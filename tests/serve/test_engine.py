"""Micro-batcher semantics: flush, coalesce, deadline, shed, drain."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.serve.artifact import _probe_arrays
from repro.serve.engine import EngineOverloaded, InferenceEngine


def _ugv_payload(policy, rng):
    obs, _, _ = _probe_arrays(policy.schema, seed=int(rng.integers(1 << 30)))
    return (obs.stop_features[0], obs.ugv_positions[0], obs.ugv_stops[0],
            obs.action_mask[0])


def _uav_payload(policy, rng, n=2):
    _, grids, aux = _probe_arrays(policy.schema, seed=int(rng.integers(1 << 30)))
    return (grids[:n], aux[:n])


@pytest.fixture
def engine(frozen_policy):
    eng = InferenceEngine(frozen_policy, max_batch=8, max_wait_us=2000,
                          queue_limit=16, timeout_ms=2000)
    yield eng
    eng.stop()


def test_single_request_flushes_on_max_wait(frozen_policy):
    """A lone request completes after ~max_wait, not only once a batch
    fills: the flush deadline is the batching contract's second half."""
    eng = InferenceEngine(frozen_policy, max_batch=64, max_wait_us=30_000,
                          timeout_ms=5000)
    try:
        rng = np.random.default_rng(0)
        t0 = time.perf_counter()
        future = eng.submit("ugv", _ugv_payload(frozen_policy, rng), rng=rng)
        result = future.result(timeout=5)
        elapsed = time.perf_counter() - t0
        assert result.batch_size == 1
        assert elapsed < 2.0  # flushed by the deadline, nowhere near forever
    finally:
        eng.stop()


def test_coalesces_up_to_max_batch(frozen_policy):
    """Requests staged before the worker starts ride one batched forward."""
    eng = InferenceEngine(frozen_policy, max_batch=8, max_wait_us=50_000,
                          queue_limit=32, timeout_ms=5000, autostart=False)
    rng = np.random.default_rng(1)
    futures = [eng.submit("ugv", _ugv_payload(frozen_policy, rng), rng=rng)
               for _ in range(5)]
    eng.start()
    sizes = {f.result(timeout=5).batch_size for f in futures}
    eng.stop()
    assert sizes == {5}
    assert eng.stats["batches"] == 1
    assert eng.stats["completed"] == 5


def test_mixed_kinds_share_one_assembly(frozen_policy):
    eng = InferenceEngine(frozen_policy, max_batch=8, max_wait_us=50_000,
                          timeout_ms=5000, autostart=False)
    rng = np.random.default_rng(2)
    f_ugv = eng.submit("ugv", _ugv_payload(frozen_policy, rng), rng=rng)
    f_uav = eng.submit("uav", _uav_payload(frozen_policy, rng), rng=rng)
    eng.start()
    r_ugv = f_ugv.result(timeout=5)
    r_uav = f_uav.result(timeout=5)
    eng.stop()
    assert r_ugv.kind == "ugv" and r_uav.kind == "uav"
    # One assembly, two per-kind forwards of one request each.
    assert eng.stats["batches"] == 1
    assert r_ugv.batch_size == r_uav.batch_size == 1
    assert r_uav.moves is not None
    np.testing.assert_array_equal(
        r_uav.moves, r_uav.actions * frozen_policy.schema["uav_max_step"])


def test_expired_requests_time_out_without_a_forward(frozen_policy):
    eng = InferenceEngine(frozen_policy, max_batch=8, max_wait_us=1000,
                          timeout_ms=5000, autostart=False)
    rng = np.random.default_rng(3)
    future = eng.submit("ugv", _ugv_payload(frozen_policy, rng), rng=rng,
                        timeout_s=0.005)
    time.sleep(0.05)  # expire while the worker is not yet running
    eng.start()
    with pytest.raises(TimeoutError):
        future.result(timeout=5)
    eng.stop()
    assert eng.stats["timeouts"] == 1
    assert eng.stats["completed"] == 0


def test_sheds_when_queue_is_full(frozen_policy):
    eng = InferenceEngine(frozen_policy, max_batch=4, queue_limit=2,
                          timeout_ms=5000, autostart=False)
    rng = np.random.default_rng(4)
    payload = _ugv_payload(frozen_policy, rng)
    eng.submit("ugv", payload, rng=rng)
    eng.submit("ugv", payload, rng=rng)
    with pytest.raises(EngineOverloaded):
        eng.submit("ugv", payload, rng=rng)
    assert eng.stats["shed"] == 1
    eng.start()
    eng.stop()


def test_stop_drains_queued_requests(frozen_policy):
    """stop() is a drain: everything already queued still completes."""
    eng = InferenceEngine(frozen_policy, max_batch=4, max_wait_us=1000,
                          queue_limit=32, timeout_ms=5000, autostart=False)
    rng = np.random.default_rng(5)
    futures = [eng.submit("ugv", _ugv_payload(frozen_policy, rng), rng=rng)
               for _ in range(6)]
    eng.start()
    eng.stop()
    assert all(f.result(timeout=1).actions.shape ==
               (frozen_policy.schema["num_ugvs"],) for f in futures)
    with pytest.raises(RuntimeError, match="stopping"):
        eng.submit("ugv", _ugv_payload(frozen_policy, rng), rng=rng)


def test_session_rng_isolation(frozen_policy, engine):
    """A stream's actions depend on its own seed/order, not co-batching."""
    payload = _ugv_payload(frozen_policy, np.random.default_rng(6))

    def run(seed, noise_streams):
        rng = np.random.default_rng(seed)
        others = [np.random.default_rng(100 + k) for k in range(noise_streams)]
        results = []
        for _ in range(4):
            futures = [engine.submit("ugv", payload, rng=o) for o in others]
            futures.append(engine.submit("ugv", payload, rng=rng))
            results.append(futures[-1].result(timeout=5).actions)
            for f in futures[:-1]:
                f.result(timeout=5)
        return np.stack(results)

    alone = run(7, noise_streams=0)
    crowded = run(7, noise_streams=3)
    np.testing.assert_array_equal(alone, crowded)


def test_greedy_matches_argmax(frozen_policy, engine):
    payload = _ugv_payload(frozen_policy, np.random.default_rng(8))
    result = engine.submit("ugv", payload, greedy=True).result(timeout=5)
    # Greedy = per-agent argmax over the masked logits for this payload.
    from repro.env.observation import UGVObsArrays

    single = UGVObsArrays(payload[0][None], payload[1][None],
                          payload[2][None], payload[3][None])
    logits, _ = frozen_policy.ugv_forward(single)
    np.testing.assert_array_equal(result.actions, logits[0].argmax(axis=-1))
