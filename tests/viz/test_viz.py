"""Tests for the SVG / ASCII rendering subsystem."""

import numpy as np
import pytest

from repro.viz import SVGCanvas, ascii_heatmap, render_campus, render_trajectories


class TestSVGCanvas:
    def test_rejects_bad_extent(self):
        with pytest.raises(ValueError):
            SVGCanvas(0.0, 100.0)

    def test_render_is_valid_svg_skeleton(self):
        canvas = SVGCanvas(100, 100, pixels=200)
        svg = canvas.render()
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert 'xmlns="http://www.w3.org/2000/svg"' in svg

    def test_y_axis_flipped(self):
        canvas = SVGCanvas(100, 100, pixels=120, margin=10)
        # World origin (0, 0) must land at the bottom of the image.
        assert canvas._y(0.0) > canvas._y(100.0)

    def test_elements_appear_in_output(self):
        canvas = SVGCanvas(10, 10)
        canvas.line((0, 0), (10, 10))
        canvas.circle((5, 5), 3.0, fill="#ff0000")
        canvas.polygon([(0, 0), (1, 0), (1, 1)], fill="#00ff00")
        canvas.polyline([(0, 0), (5, 5), (10, 0)])
        canvas.text((1, 1), "hello")
        svg = canvas.render()
        for tag in ("<line", "<circle", "<polygon", "<polyline", "<text"):
            assert tag in svg

    def test_text_escaped(self):
        canvas = SVGCanvas(10, 10)
        canvas.text((0, 0), "a<b & c>d")
        svg = canvas.render()
        assert "a&lt;b &amp; c&gt;d" in svg

    def test_short_polyline_skipped(self):
        canvas = SVGCanvas(10, 10)
        canvas.polyline([(0, 0)])
        assert "<polyline" not in canvas.render()

    def test_save_creates_file(self, tmp_path):
        canvas = SVGCanvas(10, 10)
        path = canvas.save(tmp_path / "nested" / "img.svg")
        assert path.exists()
        assert path.read_text().startswith("<svg")


class TestRenderCampus:
    def test_contains_all_features(self, toy_campus, toy_stops):
        svg = render_campus(toy_campus, stops=toy_stops).render()
        # 2 buildings -> 2 polygons; 4 sensors + stops -> circles.
        assert svg.count("<polygon") == toy_campus.num_buildings
        assert svg.count("<circle") == toy_campus.num_sensors + toy_stops.num_stops
        assert svg.count("<line") == toy_campus.roads.number_of_edges()

    def test_title_present(self, toy_campus):
        assert "toy" in render_campus(toy_campus).render()


class TestRenderTrajectories:
    def test_trace_drawn(self, toy_env):
        from repro.baselines import RandomAgent

        agent = RandomAgent(toy_env, seed=0)
        trace = agent.rollout_trace(seed=0)
        svg = render_trajectories(toy_env, trace, title="random walk").render()
        assert "<polyline" in svg
        assert "random walk" in svg

    def test_empty_trace_ok(self, toy_env):
        svg = render_trajectories(toy_env, []).render()
        assert svg.startswith("<svg")


class TestAsciiHeatmap:
    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            ascii_heatmap(np.zeros(5))

    def test_zero_grid_renders_blank(self):
        art = ascii_heatmap(np.zeros((4, 8)))
        assert set(art.replace("\n", "")) == {" "}

    def test_peak_uses_densest_char(self):
        grid = np.zeros((4, 8))
        grid[2, 3] = 5.0
        art = ascii_heatmap(grid, width=8)
        assert "@" in art

    def test_width_respected(self):
        art = ascii_heatmap(np.random.default_rng(0).random((10, 100)), width=40)
        assert all(len(line) == 40 for line in art.splitlines())


class TestLineChart:
    def _series(self):
        return {"GARL": [(2, 0.4), (4, 0.8), (6, 0.6)],
                "Random": [(2, 0.1), (4, 0.15), (6, 0.12)]}

    def test_empty_rejected(self):
        from repro.viz import line_chart

        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"a": []})

    def test_renders_all_series(self):
        from repro.viz import line_chart

        svg = line_chart(self._series(), title="Fig 3", x_label="U",
                         y_label="efficiency").render()
        assert svg.count("<polyline") == 2
        assert "GARL" in svg and "Random" in svg
        assert "Fig 3" in svg

    def test_markers_match_points(self):
        from repro.viz import line_chart

        svg = line_chart(self._series()).render()
        assert svg.count("<circle") == 6

    def test_degenerate_single_point(self):
        from repro.viz import line_chart

        svg = line_chart({"only": [(4, 0.5)]}).render()
        assert "<circle" in svg

    def test_save(self, tmp_path):
        from repro.viz import line_chart

        path = line_chart(self._series()).save(tmp_path / "chart.svg")
        assert path.exists()
