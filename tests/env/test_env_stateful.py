"""Stateful property testing of the environment (hypothesis state machine).

The machine drives random *valid* actions through the env and checks
global invariants after every transition:

* data conservation: collected + remaining == initial;
* energy ledger: spent and charged only grow; batteries within [0, e0];
* docked UAVs sit exactly on their carriers; airborne UAVs stay in the
  workzone and outside buildings' interiors cannot be entered;
* metric bounds; wait-timer/airborne consistency.
"""

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.env import AirGroundEnv, EnvConfig
from repro.maps import build_stop_graph

from ..conftest import make_toy_campus

_CAMPUS = make_toy_campus()
_STOPS = build_stop_graph(_CAMPUS, interval=75.0)


class AirGroundMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.env = AirGroundEnv(
            _CAMPUS, EnvConfig(num_ugvs=2, num_uavs_per_ugv=2, episode_len=200),
            stops=_STOPS, seed=0)
        self.result = None
        self.initial_total = 0.0
        self.collected_total = 0.0

    @initialize(seed=st.integers(0, 2**16))
    def start(self, seed):
        self.result = self.env.reset(seed)
        self.initial_total = sum(s.initial_data for s in self.env.sensors)
        self.collected_total = 0.0

    # ------------------------------------------------------------------
    @rule(choice=st.randoms(use_true_random=False))
    def step_random_valid(self, choice):
        env = self.env
        actions = []
        for obs in self.result.ugv_observations:
            feasible = np.nonzero(obs.action_mask)[0]
            actions.append(int(choice.choice(list(feasible))))
        uav_actions = []
        for o in self.result.uav_observations:
            if o is None:
                uav_actions.append(None)
            else:
                uav_actions.append(np.array([choice.uniform(-120, 120),
                                             choice.uniform(-120, 120)]))
        self.result = env.step(actions, uav_actions)
        self.collected_total += self.result.info["collected_this_step"]

    # ------------------------------------------------------------------
    @invariant()
    def data_conserved(self):
        if not self.env.sensors:
            return
        remaining = sum(s.remaining for s in self.env.sensors)
        assert self.collected_total + remaining == pytest.approx(self.initial_total)

    @invariant()
    def energy_ledger_sane(self):
        for uav in self.env.uavs:
            assert 0.0 <= uav.energy <= uav.max_energy + 1e-9
            assert uav.energy_spent >= 0.0
            assert uav.energy_charged >= 0.0
            assert uav.effective_releases <= uav.releases

    @invariant()
    def docked_uavs_on_carriers(self):
        for uav in self.env.uavs:
            if self.env.sensors and not uav.airborne:
                carrier = self.env.ugvs[uav.carrier]
                np.testing.assert_allclose(uav.position, carrier.position)

    @invariant()
    def airborne_uavs_in_workzone(self):
        for uav in self.env.uavs:
            if uav.airborne:
                assert 0.0 <= uav.position[0] <= self.env.campus.width
                assert 0.0 <= uav.position[1] <= self.env.campus.height

    @invariant()
    def waiting_consistency(self):
        # A UGV with airborne UAVs must be in its waiting window.
        for uav in self.env.uavs:
            if uav.airborne:
                assert self.env.ugvs[uav.carrier].is_waiting

    @invariant()
    def metrics_bounded(self):
        if not self.env.sensors:
            return
        snap = self.env.metrics()
        assert 0.0 <= snap.psi <= 1.0 + 1e-9
        assert 0.0 <= snap.xi <= 1.0 + 1e-9
        assert 0.0 <= snap.zeta <= 1.0
        assert snap.beta >= 0.0


AirGroundMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=30, deadline=None)
TestAirGroundStateful = AirGroundMachine.TestCase
