"""Tests for observation construction (Eqns. 9-11)."""

import numpy as np
import pytest

from repro.env import AirGroundEnv, EnvConfig
from repro.env.observation import ObservationBuilder


@pytest.fixture()
def builder(toy_campus, toy_stops):
    return ObservationBuilder(toy_campus, toy_stops, EnvConfig(num_ugvs=2, num_uavs_per_ugv=1))


class TestStaticStructures:
    def test_obstacle_raster_marks_buildings(self, builder, toy_campus):
        cell = builder.config.uav_obs_cell
        # Centre of building A (125, 125) must be an obstacle cell.
        c, r = int(125 // cell), int(125 // cell)
        assert builder.obstacles[r, c] == 1.0
        # An open road junction (200, 200) must be free.
        c, r = int(200 // cell), int(200 // cell)
        assert builder.obstacles[r, c] == 0.0

    def test_coverage_radius(self, builder, toy_stops, toy_campus):
        for b in range(toy_stops.num_stops):
            for p in range(toy_campus.num_sensors):
                gap = np.linalg.norm(toy_stops.positions[b] - toy_campus.sensor_positions[p])
                assert builder.coverage[b, p] == (gap <= builder.config.stop_coverage_radius)

    def test_reachability_under_budget(self, builder, toy_stops):
        metres = toy_stops.metre_distances()
        assert (builder.reachable == (metres <= builder.config.ugv_max_step)).all()

    def test_stop_data_aggregates_remaining(self, builder, toy_campus):
        remaining = np.arange(1.0, toy_campus.num_sensors + 1.0)
        per_stop = builder.stop_data(remaining)
        assert per_stop.shape == (builder.stops.num_stops,)
        np.testing.assert_allclose(per_stop, builder.coverage @ remaining)


class TestUGVObservation:
    def test_mask_constant_for_unseen(self, toy_env):
        res = toy_env.reset()
        obs = res.ugv_observations[0]
        cfg = toy_env.config
        # Far-away stops start masked with the constant.
        builder = toy_env.builder
        unseen = ~builder.refresh[obs.current_stop]
        assert (obs.stop_features[unseen, 2] == cfg.mask_constant).all()

    def test_seen_stops_have_real_values(self, toy_env):
        res = toy_env.reset()
        obs = res.ugv_observations[0]
        builder = toy_env.builder
        seen = builder.refresh[obs.current_stop]
        values = obs.stop_features[seen, 2]
        assert (values != toy_env.config.mask_constant).any() or (values >= 0).all()

    def test_positions_normalised(self, toy_env):
        res = toy_env.reset()
        obs = res.ugv_observations[0]
        assert (obs.stop_features[:, :2] >= 0).all()
        assert (obs.stop_features[:, :2] <= 1).all()
        assert (obs.ugv_positions >= 0).all() and (obs.ugv_positions <= 1).all()

    def test_action_mask_semantics(self, toy_env):
        res = toy_env.reset()
        obs = res.ugv_observations[0]
        b = toy_env.num_stops
        assert obs.action_mask.shape == (b + 1,)
        assert obs.action_mask[obs.current_stop]  # staying allowed
        assert obs.action_mask[b]  # release allowed
        metres = toy_env.stops.metre_distances()
        for stop in range(b):
            if obs.action_mask[stop]:
                assert metres[obs.current_stop, stop] <= toy_env.config.ugv_max_step

    def test_flat_dimension(self, toy_env):
        res = toy_env.reset()
        obs = res.ugv_observations[0]
        expected = toy_env.num_stops * 3 + toy_env.config.num_ugvs * 2
        assert obs.flat().shape == (expected,)


class TestUAVObservation:
    def _airborne_obs(self, toy_env):
        res = toy_env.reset()
        release = toy_env.release_action
        res = toy_env.step([release] * toy_env.config.num_ugvs,
                           [None] * toy_env.config.num_uavs)
        obs = [o for o in res.uav_observations if o is not None]
        assert obs
        return obs[0]

    def test_grid_shape_and_channels(self, toy_env):
        obs = self._airborne_obs(toy_env)
        size = toy_env.config.uav_obs_size
        assert obs.grid.shape == (3, size, size)
        assert obs.channels == 3

    def test_aux_vector(self, toy_env):
        obs = self._airborne_obs(toy_env)
        assert obs.aux.shape == (5,)
        assert 0.0 <= obs.aux[0] <= 1.0 and 0.0 <= obs.aux[1] <= 1.0
        assert obs.aux[2] == pytest.approx(1.0)  # freshly charged

    def test_out_of_bounds_padded_as_obstacle(self, toy_campus, toy_stops):
        # Put the UAV at the very corner: the crop must contain padded
        # obstacle cells.
        cfg = EnvConfig(num_ugvs=1, num_uavs_per_ugv=1, episode_len=5)
        env = AirGroundEnv(toy_campus, cfg, stops=toy_stops, seed=0)
        env.reset()
        env.step([env.release_action], [None])
        uav = env.uavs[0]
        uav.position = np.array([0.0, 0.0])
        obs = env._uav_observations()[0]
        assert obs is not None
        # Top-left corner of the crop is outside the map -> obstacle == 1.
        assert obs.grid[0, 0, 0] == 1.0

    def test_presence_channel_excludes_self(self, toy_campus, toy_stops):
        cfg = EnvConfig(num_ugvs=1, num_uavs_per_ugv=2, episode_len=5)
        env = AirGroundEnv(toy_campus, cfg, stops=toy_stops, seed=0)
        env.reset()
        env.step([env.release_action], [None, None])
        # Both UAVs at the same spot: each sees exactly one other UAV.
        obs = env._uav_observations()
        radius = cfg.uav_obs_radius
        assert obs[0].grid[2, radius, radius] == pytest.approx(1.0)
