"""Tests for Sensor / UGV / UAV lifecycle rules."""

import numpy as np
import pytest

from repro.env import UAV, UGV, Sensor


class TestSensor:
    def test_initial_state(self):
        s = Sensor(0, (10.0, 20.0), 1.2)
        assert s.remaining == pytest.approx(1.2)
        assert s.collected == 0.0
        assert s.collected_ratio == 0.0

    def test_requires_positive_data(self):
        with pytest.raises(ValueError):
            Sensor(0, (0, 0), 0.0)

    def test_drain_caps_at_remaining(self):
        s = Sensor(0, (0, 0), 1.0)
        assert s.drain(0.6) == pytest.approx(0.6)
        assert s.drain(0.6) == pytest.approx(0.4)
        assert s.drain(0.6) == 0.0
        assert s.remaining == 0.0

    def test_collected_ratio(self):
        s = Sensor(0, (0, 0), 2.0)
        s.drain(0.5)
        assert s.collected_ratio == pytest.approx(0.25)

    def test_reset(self):
        s = Sensor(0, (0, 0), 1.5)
        s.drain(1.5)
        s.reset()
        assert s.remaining == pytest.approx(1.5)


class TestUGV:
    def test_release_protocol(self):
        g = UGV(0, stop=3, position=np.zeros(2))
        g.begin_release(4)
        assert g.is_waiting
        assert g.releases == 1
        with pytest.raises(RuntimeError):
            g.begin_release(4)

    def test_cannot_move_while_waiting(self):
        g = UGV(0, stop=0, position=np.zeros(2))
        g.begin_release(2)
        with pytest.raises(RuntimeError):
            g.move_to(1, np.ones(2), 100.0)

    def test_wait_timer_countdown(self):
        g = UGV(0, stop=0, position=np.zeros(2))
        g.begin_release(2)
        assert g.tick_wait() is False  # 2 -> 1
        assert g.tick_wait() is True  # 1 -> 0, window closes
        assert not g.is_waiting
        assert g.tick_wait() is False  # idempotent at zero

    def test_move_accumulates_distance(self):
        g = UGV(0, stop=0, position=np.zeros(2))
        g.move_to(1, np.array([100.0, 0.0]), 100.0)
        g.move_to(2, np.array([200.0, 0.0]), 150.0)
        assert g.distance_travelled == pytest.approx(250.0)
        assert g.stop == 2
        np.testing.assert_allclose(g.position, [200.0, 0.0])


class TestUAV:
    def make(self) -> UAV:
        return UAV(0, carrier=0, position=np.zeros(2), energy=10.0, max_energy=10.0)

    def test_requires_positive_battery(self):
        with pytest.raises(ValueError):
            UAV(0, 0, np.zeros(2), energy=0.0, max_energy=0.0)

    def test_launch_fly_dock_cycle(self):
        v = self.make()
        v.launch(np.array([5.0, 5.0]))
        assert v.airborne
        v.fly(np.array([10.0, 5.0]), metres=5.0, energy_per_metre=0.01)
        assert v.energy == pytest.approx(10.0 - 0.05)
        assert v.energy_spent == pytest.approx(0.05)
        v.record_collection(0.5)
        v.dock(np.array([0.0, 0.0]))
        assert not v.airborne
        assert v.energy == pytest.approx(10.0)  # recharged
        assert v.energy_charged == pytest.approx(0.05)
        assert v.releases == 1
        assert v.effective_releases == 1

    def test_ineffective_release_not_counted(self):
        v = self.make()
        v.launch(np.zeros(2))
        v.dock(np.zeros(2))
        assert v.releases == 1
        assert v.effective_releases == 0

    def test_cannot_launch_twice(self):
        v = self.make()
        v.launch(np.zeros(2))
        with pytest.raises(RuntimeError):
            v.launch(np.zeros(2))

    def test_cannot_fly_docked(self):
        v = self.make()
        with pytest.raises(RuntimeError):
            v.fly(np.ones(2), 1.0, 0.01)

    def test_cannot_dock_when_docked(self):
        v = self.make()
        with pytest.raises(RuntimeError):
            v.dock(np.zeros(2))

    def test_energy_never_negative(self):
        v = self.make()
        v.launch(np.zeros(2))
        v.fly(np.array([5000.0, 0.0]), metres=5000.0, energy_per_metre=0.01)
        assert v.energy == 0.0
        assert v.exhausted
