"""Tests for the episode event log."""

import numpy as np
import pytest

from repro.env import Event, EventLog


class TestEventPrimitives:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Event(0, "explode", 0)

    def test_emit_and_len(self):
        log = EventLog()
        log.emit(0, "release", 1)
        log.emit(1, "collect", 2, 0.5, (10.0, 20.0))
        assert len(log) == 2
        assert log.events[1].position == (10.0, 20.0)

    def test_clear(self):
        log = EventLog()
        log.emit(0, "reset", -1)
        log.clear()
        assert len(log) == 0

    def test_of_kind_validates(self):
        with pytest.raises(ValueError):
            EventLog().of_kind("explode")

    def test_counts_and_total(self):
        log = EventLog()
        log.emit(0, "collect", 0, 0.3)
        log.emit(1, "collect", 1, 0.7)
        log.emit(1, "crash", 0)
        assert log.counts() == {"collect": 2, "crash": 1}
        assert log.total("collect") == pytest.approx(1.0)

    def test_for_agent(self):
        log = EventLog()
        log.emit(0, "collect", 0, 0.3)
        log.emit(0, "collect", 1, 0.4)
        assert len(log.for_agent("collect", 0)) == 1

    def test_release_effectiveness(self):
        log = EventLog()
        log.emit(3, "dock", 0, 0.5)  # collected during flight
        log.emit(3, "dock", 1, 0.0)  # empty flight
        assert log.release_effectiveness() == pytest.approx(0.5)
        assert EventLog().release_effectiveness() == 0.0

    def test_crash_hotspots(self):
        log = EventLog()
        for _ in range(3):
            log.emit(0, "crash", 0, position=(101.0, 99.0))
        log.emit(0, "crash", 1, position=(500.0, 500.0))
        hotspots = log.crash_hotspots(top=1)
        assert hotspots[0] == ((100.0, 100.0), 3)

    def test_collection_timeline(self):
        log = EventLog()
        log.emit(2, "collect", 0, 0.6)
        log.emit(2, "collect", 1, 0.4)
        log.emit(5, "collect", 0, 1.0)
        timeline = log.collection_timeline(horizon=6)
        assert timeline[2] == pytest.approx(1.0)
        assert timeline[5] == pytest.approx(1.0)
        assert timeline.sum() == pytest.approx(2.0)

    def test_summary_format(self):
        log = EventLog()
        log.emit(0, "release", 0)
        text = log.summary()
        assert "release=1" in text and "collected=" in text


class TestEnvIntegration:
    def test_env_emits_full_lifecycle(self, toy_env):
        log = EventLog()
        toy_env.attach_event_log(log)
        toy_env.reset()
        assert log.counts().get("reset") == 1

        # Release -> collect -> dock.
        toy_env.step([toy_env.release_action] * 2, [None] * 4)
        assert log.counts().get("release") == 2
        uav = toy_env.uavs[0]
        uav.position = toy_env.sensors[0].position + np.array([5.0, 0.0])
        toy_env.step([g.stop for g in toy_env.ugvs], [None] * 4)
        assert log.total("collect") > 0
        for _ in range(toy_env.config.release_duration):
            if toy_env.t >= toy_env.config.episode_len:
                break
            toy_env.step([g.stop for g in toy_env.ugvs], [None] * 4)
        assert log.counts().get("dock", 0) == 4
        assert 0.0 < log.release_effectiveness() <= 1.0

    def test_move_events_record_distance(self, toy_env):
        log = EventLog()
        toy_env.attach_event_log(log)
        toy_env.reset()
        target = toy_env.stops.neighbors(toy_env.ugvs[0].stop)[0]
        actions = [g.stop for g in toy_env.ugvs]
        actions[0] = target
        toy_env.step(actions, [None] * 4)
        moves = log.of_kind("move")
        assert len(moves) == 1
        assert moves[0].value > 0

    def test_detach_stops_logging(self, toy_env):
        log = EventLog()
        toy_env.attach_event_log(log)
        toy_env.reset()
        toy_env.attach_event_log(None)
        toy_env.step([toy_env.release_action] * 2, [None] * 4)
        assert log.counts().get("release") is None
