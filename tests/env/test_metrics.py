"""Tests for the Section III-B metric formulas."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.env import (
    MetricSnapshot,
    collection_ratio,
    cooperation_factor,
    efficiency,
    energy_ratio,
    jain_fairness,
)


class TestCollectionRatio:
    def test_nothing_collected(self):
        assert collection_ratio(np.ones(4), np.ones(4)) == 0.0

    def test_everything_collected(self):
        assert collection_ratio(np.ones(4), np.zeros(4)) == pytest.approx(1.0)

    def test_partial(self):
        initial = np.array([1.0, 1.0])
        remaining = np.array([0.5, 1.0])
        assert collection_ratio(initial, remaining) == pytest.approx(0.25)

    def test_requires_positive_total(self):
        with pytest.raises(ValueError):
            collection_ratio(np.zeros(2), np.zeros(2))


class TestJainFairness:
    def test_perfectly_even_near_one(self):
        initial = np.ones(10)
        remaining = np.full(10, 0.5)
        assert jain_fairness(initial, remaining) == pytest.approx(1.0, abs=1e-5)

    def test_single_sensor_collected_is_one_over_p(self):
        initial = np.ones(5)
        remaining = initial.copy()
        remaining[0] = 0.0  # only sensor 0 fully collected
        assert jain_fairness(initial, remaining) == pytest.approx(1.0 / 5.0, abs=1e-5)

    def test_nothing_collected_is_zero(self):
        assert jain_fairness(np.ones(4), np.ones(4)) == pytest.approx(0.0)

    def test_more_even_is_fairer(self):
        initial = np.ones(4)
        even = jain_fairness(initial, np.full(4, 0.5))
        uneven = jain_fairness(initial, np.array([0.0, 1.0, 1.0, 1.0]))
        assert even > uneven

    @settings(max_examples=40, deadline=None)
    @given(arrays(np.float64, 6, elements=st.floats(0.0, 1.0)))
    def test_bounded_zero_one(self, ratios):
        initial = np.ones(6)
        remaining = 1.0 - ratios
        xi = jain_fairness(initial, remaining)
        assert -1e-9 <= xi <= 1.0 + 1e-9


class TestCooperationFactor:
    def test_no_releases_is_zero(self):
        assert cooperation_factor(np.zeros(3), np.zeros(3)) == 0.0

    def test_all_effective(self):
        assert cooperation_factor(np.array([2, 3]), np.array([2, 3])) == pytest.approx(1.0)

    def test_partial(self):
        assert cooperation_factor(np.array([4]), np.array([1])) == pytest.approx(0.25)


class TestEnergyRatio:
    def test_formula(self):
        # beta = spent / (e0_total + charged)
        assert energy_ratio(5.0, 20.0, 5.0) == pytest.approx(0.2)

    def test_zero_denominator_rejected(self):
        with pytest.raises(ValueError):
            energy_ratio(1.0, 0.0, 0.0)


class TestEfficiency:
    def test_formula(self):
        assert efficiency(0.5, 0.5, 0.5, 0.25) == pytest.approx(0.5)

    def test_zero_beta_guarded(self):
        assert np.isfinite(efficiency(1.0, 1.0, 1.0, 0.0))

    def test_snapshot(self):
        snap = MetricSnapshot(psi=0.6, xi=0.5, zeta=0.7, beta=0.21)
        assert snap.efficiency == pytest.approx(0.6 * 0.5 * 0.7 / 0.21)
        d = snap.as_dict()
        assert set(d) == {"psi", "xi", "zeta", "beta", "efficiency"}
        text = str(snap)
        assert "λ=" in text and "ψ=" in text


@settings(max_examples=40, deadline=None)
@given(arrays(np.float64, 5, elements=st.floats(0.1, 2.0)),
       arrays(np.float64, 5, elements=st.floats(0.0, 1.0)))
def test_psi_bounded_when_remaining_below_initial(initial, fraction):
    remaining = initial * fraction
    psi = collection_ratio(initial, remaining)
    assert -1e-9 <= psi <= 1.0 + 1e-9
