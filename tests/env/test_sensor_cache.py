"""Cache-coherence regression tests for the env's preallocated sensor arrays.

``AirGroundEnv`` keeps ``_sensor_positions`` and ``_sensor_remaining``
caches so per-step consumers (collection scan, fairness, rasters) never
rebuild arrays from the Python ``Sensor`` objects (perfcheck PF001).
The caches must stay *bit-identical* to a rebuild at every step — the
fix shipped with a byte-identical train.jsonl guarantee, and these
tests pin the invariant that makes that possible: the cache is synced
by assigning the very float the object holds, never by arithmetic.
"""

import numpy as np

from repro.env import AirGroundEnv, EnvConfig


def rebuilt_remaining(env) -> np.ndarray:
    return np.array([s.remaining for s in env.sensors])


# Two flight legs from the launch point (200, 200) that skirt building A
# and end at (140, 60) — 38 m from the south-wall sensor at (125, 95),
# inside the 60 m sensing range, without ever crossing a building.
FLIGHT_LEGS = [np.array([0.0, -100.0]), np.array([-60.0, -40.0])]


def scripted_uav_actions(env, leg: int):
    delta = FLIGHT_LEGS[leg] if leg < len(FLIGHT_LEGS) else np.zeros(2)
    return [delta if uav.airborne else None for uav in env.uavs]


class TestSensorCaches:
    def test_positions_cache_matches_entities(self, toy_env):
        toy_env.reset()
        expected = np.array([s.position for s in toy_env.sensors], dtype=float)
        assert np.array_equal(toy_env._sensor_positions, expected)

    def test_remaining_cache_after_reset(self, toy_env):
        toy_env.reset(seed=11)
        assert np.array_equal(toy_env._sensor_remaining,
                              rebuilt_remaining(toy_env))
        # Fresh episode: nothing drained yet.
        assert np.array_equal(toy_env._sensor_remaining,
                              toy_env._initial_data)

    def test_remaining_cache_bit_identical_through_episode(self, toy_env):
        toy_env.reset(seed=3)
        # Release the UAV swarm, then chase sensors until data drains.
        toy_env.step([toy_env.release_action] * toy_env.config.num_ugvs,
                     [None] * toy_env.config.num_uavs)
        assert np.array_equal(toy_env._sensor_remaining,
                              rebuilt_remaining(toy_env))
        for leg in range(4):
            if toy_env.t >= toy_env.config.episode_len:
                break
            toy_env.step([g.stop for g in toy_env.ugvs],
                         scripted_uav_actions(toy_env, leg))
            assert np.array_equal(toy_env._sensor_remaining,
                                  rebuilt_remaining(toy_env))
        # The sync path must actually have run: some sensor drained.
        assert not np.array_equal(toy_env._sensor_remaining,
                                  toy_env._initial_data)

    def test_reset_restores_cache_after_drain(self, toy_env):
        toy_env.reset(seed=3)
        toy_env.step([toy_env.release_action] * toy_env.config.num_ugvs,
                     [None] * toy_env.config.num_uavs)
        for leg in range(4):
            toy_env.step([g.stop for g in toy_env.ugvs],
                         scripted_uav_actions(toy_env, leg))
        toy_env.reset(seed=3)
        assert np.array_equal(toy_env._sensor_remaining,
                              rebuilt_remaining(toy_env))
        assert np.array_equal(toy_env._sensor_remaining,
                              toy_env._initial_data)
