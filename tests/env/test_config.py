"""Tests for EnvConfig defaults (paper Section V-A) and validation."""

import pytest

from repro.env import EnvConfig


class TestPaperDefaults:
    def test_timeslot_30_seconds(self):
        assert EnvConfig().timeslot_seconds == 30.0

    def test_sensor_data_range_1_to_1_5_gb(self):
        cfg = EnvConfig()
        assert cfg.sensor_data_min == 1.0
        assert cfg.sensor_data_max == 1.5

    def test_collect_rate_matches_166_7_mbps(self):
        # 166.7 Mbps * 30 s / 8 bits = 0.625 GB per timeslot.
        assert EnvConfig().collect_rate == pytest.approx(0.625)

    def test_uav_speed_12_kmh(self):
        # 12 km/h = 100 m per 30 s timeslot.
        assert EnvConfig().uav_max_step == pytest.approx(100.0)

    def test_ugv_speed_48_kmh(self):
        # 48 km/h = 400 m per 30 s timeslot.
        assert EnvConfig().ugv_max_step == pytest.approx(400.0)

    def test_energy_constants(self):
        cfg = EnvConfig()
        assert cfg.uav_energy == 10.0  # kJ, TS-X4
        assert cfg.energy_per_metre == 0.01  # kJ/m

    def test_sensing_range_60_m(self):
        assert EnvConfig().sensing_range == 60.0

    def test_stop_interval_100_m(self):
        assert EnvConfig().stop_interval == 100.0


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"num_ugvs": 0},
        {"num_uavs_per_ugv": 0},
        {"episode_len": 0},
        {"sensor_data_min": 0.0},
        {"sensor_data_min": 2.0, "sensor_data_max": 1.0},
        {"release_duration": 0},
        {"uav_max_step": -1.0},
        {"ugv_max_step": 0.0},
    ])
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            EnvConfig(**kwargs)


class TestDerived:
    def test_num_uavs(self):
        assert EnvConfig(num_ugvs=3, num_uavs_per_ugv=4).num_uavs == 12

    def test_obs_size(self):
        assert EnvConfig(uav_obs_radius=7).uav_obs_size == 15

    def test_with_coalition(self):
        base = EnvConfig(episode_len=42)
        derived = base.with_coalition(6, 3)
        assert derived.num_ugvs == 6
        assert derived.num_uavs_per_ugv == 3
        assert derived.episode_len == 42  # other settings preserved

    def test_replace(self):
        cfg = EnvConfig().replace(sensing_range=80.0)
        assert cfg.sensing_range == 80.0

    def test_frozen(self):
        with pytest.raises(Exception):
            EnvConfig().num_ugvs = 5
