"""Tests for VecAirGroundEnv and the array observation encoders."""

import numpy as np
import pytest

from repro.env import (
    AirGroundEnv,
    EnvConfig,
    MetricSnapshot,
    UAVObsArrays,
    UGVObsArrays,
    VecAirGroundEnv,
    replica_seed,
)


@pytest.fixture()
def venv(toy_campus, toy_stops):
    config = EnvConfig(num_ugvs=2, num_uavs_per_ugv=2, episode_len=12)
    env = AirGroundEnv(toy_campus, config, stops=toy_stops, seed=7)
    return VecAirGroundEnv.from_env(env, 3)


def _random_actions(venv, rng):
    k, u, v = venv.num_envs, venv.config.num_ugvs, venv.config.num_uavs
    ugv = rng.integers(0, venv.num_stops + 1, (k, u))
    uav = rng.uniform(-30.0, 30.0, (k, v, 2))
    return ugv, uav


class TestVecEnvBasics:
    def test_reset_shapes(self, venv):
        res = venv.reset()
        k, u, v = 3, venv.config.num_ugvs, venv.config.num_uavs
        b = venv.num_stops
        assert res.ugv_obs.stop_features.shape == (k, u, b, 3)
        assert res.ugv_obs.action_mask.shape == (k, u, b + 1)
        assert res.ugv_obs.ugv_stops.shape == (k, u)
        assert res.uav_obs.airborne.shape == (k, v)
        assert res.ugv_rewards.shape == (k, u)
        assert res.dones.shape == (k,)
        assert res.ugv_actionable.all()  # everyone acts at t=0
        assert not res.uav_obs.airborne.any()  # all docked at t=0

    def test_step_shapes_and_infos(self, venv):
        rng = np.random.default_rng(0)
        venv.reset()
        res = venv.step(*_random_actions(venv, rng))
        assert res.ugv_rewards.shape == (3, venv.config.num_ugvs)
        assert res.uav_rewards.shape == (3, venv.config.num_uavs)
        assert len(res.infos) == 3
        assert all(info["t"] == 1 for info in res.infos)

    def test_step_before_reset_raises(self, toy_campus, toy_stops):
        config = EnvConfig(num_ugvs=2, num_uavs_per_ugv=1, episode_len=5)
        env = AirGroundEnv(toy_campus, config, stops=toy_stops, seed=0)
        venv = VecAirGroundEnv.from_env(env, 2)
        rng = np.random.default_rng(0)
        with pytest.raises(RuntimeError):
            venv.step(*_random_actions(venv, rng))

    def test_action_shape_validation(self, venv):
        venv.reset()
        with pytest.raises(ValueError):
            venv.step(np.zeros((3, 1), dtype=int),
                      np.zeros((3, venv.config.num_uavs, 2)))
        with pytest.raises(ValueError):
            venv.step(np.zeros((3, venv.config.num_ugvs), dtype=int),
                      np.zeros((3, 1, 2)))

    def test_replica_seeds_distinct(self, venv):
        seeds = [env._seed for env in venv.envs]
        assert len(set(seeds)) == 3
        assert seeds[0] == 7  # replica 0 keeps the base seed
        assert seeds[1] == replica_seed(7, 1)

    def test_replicas_diverge(self, venv):
        """Different replica seeds produce different sensor draws."""
        venv.reset()
        data0 = venv.envs[0]._initial_data
        data1 = venv.envs[1]._initial_data
        assert not np.allclose(data0, data1)


class TestAutoReset:
    def test_auto_reset_on_done(self, venv):
        rng = np.random.default_rng(1)
        venv.reset()
        t_len = venv.config.episode_len
        for t in range(t_len):
            res = venv.step(*_random_actions(venv, rng))
        assert res.dones.all()
        assert all("final_metrics" in info for info in res.infos)
        assert all(isinstance(info["final_metrics"], MetricSnapshot)
                   for info in res.infos)
        # Auto-reset: envs are at t=0 and the next step works immediately.
        assert all(env.t == 0 for env in venv.envs)
        res = venv.step(*_random_actions(venv, rng))
        assert not res.dones.any()

    def test_reset_on_done_false_requires_reset(self, venv):
        rng = np.random.default_rng(1)
        venv.reset()
        for t in range(venv.config.episode_len):
            last = t == venv.config.episode_len - 1
            res = venv.step(*_random_actions(venv, rng), reset_on_done=not last)
        assert res.dones.all()
        with pytest.raises(RuntimeError):
            venv.step(*_random_actions(venv, rng))
        venv.reset()
        venv.step(*_random_actions(venv, rng))  # fine again

    def test_double_buffering_keeps_previous_obs_valid(self, venv):
        rng = np.random.default_rng(2)
        prev = venv.reset()
        stops_before = prev.ugv_obs.ugv_stops.copy()
        cur = venv.step(*_random_actions(venv, rng))
        # The previous result's arrays were not overwritten by the step.
        assert np.array_equal(prev.ugv_obs.ugv_stops, stops_before)
        assert cur.ugv_obs is not prev.ugv_obs


class TestEncoderEquivalence:
    """Batch encoders must produce bitwise the per-agent builder output."""

    def test_ugv_and_uav_encoders_match_dataclass_builders(self, toy_campus, toy_stops):
        config = EnvConfig(num_ugvs=2, num_uavs_per_ugv=2, episode_len=12)
        env = AirGroundEnv(toy_campus, config, stops=toy_stops, seed=3)
        env.reset()
        rng = np.random.default_rng(0)
        ugv_out = UGVObsArrays.allocate((1,), config.num_ugvs, env.num_stops)
        uav_out = UAVObsArrays.allocate((1,), config.num_uavs, config.uav_obs_size)
        airborne_checked = 0
        for t in range(config.episode_len):
            # Release often so the UAV raster path is exercised.
            acts = (np.full(config.num_ugvs, env.release_action) if t % 3 == 0
                    else rng.integers(0, env.num_stops, config.num_ugvs))
            uacts = rng.uniform(-30, 30, (config.num_uavs, 2))
            res = env.step(acts, uacts)
            env.encode_observations(ugv_out, uav_out, 0)
            for u, obs in enumerate(res.ugv_observations):
                assert np.array_equal(obs.stop_features, ugv_out.stop_features[0, u])
                assert np.array_equal(obs.action_mask, ugv_out.action_mask[0, u])
                assert np.array_equal(obs.ugv_positions, ugv_out.ugv_positions[0])
                assert obs.current_stop == ugv_out.ugv_stops[0, u]
            for v, obs in enumerate(res.uav_observations):
                assert (obs is not None) == bool(uav_out.airborne[0, v])
                if obs is not None:
                    airborne_checked += 1
                    assert np.array_equal(obs.grid, uav_out.grid[0, v])
                    assert np.array_equal(obs.aux, uav_out.aux[0, v])
        assert airborne_checked > 0

    def test_view_adapter_roundtrip(self, toy_env):
        res = toy_env.reset()
        stacked = UGVObsArrays.from_observations([res.ugv_observations])
        views = stacked.observations(0)
        for view, ref in zip(views, res.ugv_observations):
            assert view.agent_index == ref.agent_index
            assert view.current_stop == ref.current_stop
            assert np.array_equal(view.stop_features, ref.stop_features)
            assert np.array_equal(view.action_mask, ref.action_mask)

    def test_index_selects_leading_axes(self, toy_env):
        res = toy_env.reset()
        stacked = UGVObsArrays.from_observations([res.ugv_observations] * 4)
        picked = stacked.index(np.array([2, 0]))
        assert picked.lead_shape == (2,)
        assert np.array_equal(picked.stop_features[0], stacked.stop_features[2])


class TestMetricsReduction:
    def test_mean_of_snapshots(self):
        a = MetricSnapshot(0.2, 0.4, 0.6, 0.8)
        b = MetricSnapshot(0.4, 0.6, 0.8, 1.0)
        m = MetricSnapshot.mean([a, b])
        assert m.psi == pytest.approx(0.3)
        assert m.xi == pytest.approx(0.5)
        assert m.zeta == pytest.approx(0.7)
        assert m.beta == pytest.approx(0.9)

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            MetricSnapshot.mean([])

    def test_venv_metrics_is_replica_mean(self, venv):
        rng = np.random.default_rng(3)
        venv.reset()
        for _ in range(4):
            venv.step(*_random_actions(venv, rng))
        per_env = venv.metrics_per_env()
        mean = venv.metrics()
        assert mean.psi == pytest.approx(np.mean([s.psi for s in per_env]))
        assert mean.beta == pytest.approx(np.mean([s.beta for s in per_env]))
