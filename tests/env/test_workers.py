"""Multi-process rollout worker pool: equivalence, resume, fork safety.

The worker pool's whole contract is "parallelism changes nothing":
``WorkerVecEnv`` must reproduce the in-process ``VecAirGroundEnv``
stream bitwise for any worker count, resume byte-for-byte through a
mid-run kill, never inherit parent process state across the fork
boundary, and fail loudly (never hang) when a worker dies.
"""

import os
import signal

import numpy as np
import pytest

import repro.experiments.runner as runner_module
from repro.env import (
    AirGroundEnv,
    EnvConfig,
    VecAirGroundEnv,
    WorkerError,
    WorkerVecEnv,
    replica_seed,
)
from repro.experiments import TrainingInterrupted, get_preset, run_training
from repro.experiments.telemetry import TrainingLogger

CFG = EnvConfig(num_ugvs=2, num_uavs_per_ugv=2, episode_len=12)


def _fresh_env(toy_campus, toy_stops, seed=7):
    return AirGroundEnv(toy_campus, CFG, stops=toy_stops, seed=seed)


def _random_actions(rng, num_envs, num_stops):
    ugv = rng.integers(0, num_stops + 1, size=(num_envs, CFG.num_ugvs))
    uav = rng.uniform(-1.0, 1.0, size=(num_envs, CFG.num_uavs, 2))
    return ugv, uav


def _assert_obs_equal(a, b):
    np.testing.assert_array_equal(a.ugv_obs.stop_features, b.ugv_obs.stop_features)
    np.testing.assert_array_equal(a.ugv_obs.ugv_positions, b.ugv_obs.ugv_positions)
    np.testing.assert_array_equal(a.ugv_obs.ugv_stops, b.ugv_obs.ugv_stops)
    np.testing.assert_array_equal(a.ugv_obs.action_mask, b.ugv_obs.action_mask)
    np.testing.assert_array_equal(a.uav_obs.airborne, b.uav_obs.airborne)
    # Docked UAVs' grid/aux rows are stale by contract (consumers mask
    # on ``airborne``) — only airborne rows carry meaningful content.
    live = a.uav_obs.airborne
    np.testing.assert_array_equal(a.uav_obs.grid[live], b.uav_obs.grid[live])
    np.testing.assert_array_equal(a.uav_obs.aux[live], b.uav_obs.aux[live])
    np.testing.assert_array_equal(a.ugv_actionable, b.ugv_actionable)


def _assert_step_equal(a, b):
    _assert_obs_equal(a, b)
    np.testing.assert_array_equal(a.ugv_rewards, b.ugv_rewards)
    np.testing.assert_array_equal(a.uav_rewards, b.uav_rewards)
    np.testing.assert_array_equal(a.dones, b.dones)
    assert a.infos == b.infos


class TestBitwiseEquivalence:
    """workers=W ≡ in-process VecAirGroundEnv, for any W."""

    @pytest.mark.parametrize("num_workers", [1, 2, 3])
    def test_golden_stream_matches_in_process(self, toy_campus, toy_stops,
                                              num_workers):
        num_envs = 4
        pool = WorkerVecEnv(_fresh_env(toy_campus, toy_stops),
                            num_envs, num_workers)
        ref = VecAirGroundEnv.from_env(_fresh_env(toy_campus, toy_stops),
                                       num_envs)
        try:
            _assert_obs_equal(pool.reset(), ref.reset())
            rng = np.random.default_rng(42)
            # 2+ episode boundaries: exercises auto-reset stream handoff.
            for _ in range(2 * CFG.episode_len + 3):
                ugv, uav = _random_actions(rng, num_envs, pool.num_stops)
                _assert_step_equal(pool.step(ugv, uav), ref.step(ugv, uav))
            assert pool.state_digests() == ref.state_digests()
            assert pool.rng_states() == ref.rng_states()
        finally:
            pool.close()

    def test_seeded_reset_matches_in_process(self, toy_campus, toy_stops):
        pool = WorkerVecEnv(_fresh_env(toy_campus, toy_stops), 3, 2)
        ref = VecAirGroundEnv.from_env(_fresh_env(toy_campus, toy_stops), 3)
        try:
            seeds = [11, 12, 13]
            _assert_obs_equal(pool.reset(seeds), ref.reset(seeds))
            assert pool.state_digests() == ref.state_digests()
        finally:
            pool.close()

    def test_spawn_start_method(self, toy_campus, toy_stops):
        """The spawn path (fresh interpreter per worker) stays bitwise too."""
        pool = WorkerVecEnv(_fresh_env(toy_campus, toy_stops), 2, 2,
                            start_method="spawn")
        ref = VecAirGroundEnv.from_env(_fresh_env(toy_campus, toy_stops), 2)
        try:
            _assert_obs_equal(pool.reset(), ref.reset())
            rng = np.random.default_rng(5)
            for _ in range(3):
                ugv, uav = _random_actions(rng, 2, pool.num_stops)
                _assert_step_equal(pool.step(ugv, uav), ref.step(ugv, uav))
            assert pool.state_digests() == ref.state_digests()
        finally:
            pool.close()


class TestSeedStriding:
    def test_replica_streams_independent_of_partition(self, toy_campus,
                                                      toy_stops):
        """Replica k's rng depends only on k, never on which worker owns it."""
        states = {}
        for w in (1, 2, 3):
            pool = WorkerVecEnv(_fresh_env(toy_campus, toy_stops), 3, w)
            try:
                states[w] = pool.rng_states()
            finally:
                pool.close()
        assert states[1] == states[2] == states[3]
        expected = [AirGroundEnv(toy_campus, CFG, stops=toy_stops,
                                 seed=replica_seed(7, k)).rng_state()
                    for k in range(3)]
        assert states[1] == expected

    def test_contiguous_balanced_partition(self, toy_campus, toy_stops):
        pool = WorkerVecEnv(_fresh_env(toy_campus, toy_stops), 5, 3)
        try:
            assert pool._bounds == [(0, 2), (2, 4), (4, 5)]
        finally:
            pool.close()

    def test_worker_count_validation(self, toy_campus, toy_stops):
        env = _fresh_env(toy_campus, toy_stops)
        with pytest.raises(ValueError, match="num_workers"):
            WorkerVecEnv(env, 2, 3)
        with pytest.raises(ValueError, match="num_workers"):
            WorkerVecEnv(env, 2, 0)


class TestPrefetchResetSemantics:
    def test_rng_snapshot_precedes_prefetched_reset(self, toy_campus,
                                                    toy_stops):
        """A checkpoint taken during the overlapped update replays the
        prefetched reset: restoring the pre-reset snapshot and resetting
        unseeded lands in exactly the prefetched state."""
        pool = WorkerVecEnv(_fresh_env(toy_campus, toy_stops), 4, 2)
        try:
            pool.reset()
            rng = np.random.default_rng(9)
            for _ in range(4):
                ugv, uav = _random_actions(rng, 4, pool.num_stops)
                pool.step(ugv, uav)
            pre = pool.rng_states()
            pool.prefetch_reset()
            # While the prefetch is in flight, checkpoints must see the
            # pre-reset snapshot (the resume replays the reset draws).
            assert pool.rng_states() == pre
            res_prefetched = pool.reset()
            digests = pool.state_digests()

            # "Resume": push the snapshot back, reset unseeded.
            pool.set_rng_states(pre)
            res_resumed = pool.reset()
            _assert_obs_equal(res_prefetched, res_resumed)
            assert pool.state_digests() == digests
        finally:
            pool.close()

    def test_seeded_reset_overrides_prefetch(self, toy_campus, toy_stops):
        pool = WorkerVecEnv(_fresh_env(toy_campus, toy_stops), 2, 2)
        ref = VecAirGroundEnv.from_env(_fresh_env(toy_campus, toy_stops), 2)
        try:
            pool.reset()
            ref.reset()
            pool.prefetch_reset()
            seeds = [21, 22]
            _assert_obs_equal(pool.reset(seeds), ref.reset(seeds))
            assert pool.state_digests() == ref.state_digests()
        finally:
            pool.close()


class TestForkSafety:
    def test_worker_starts_with_zero_inherited_state(self, toy_campus,
                                                     toy_stops):
        """A worker's first breath sees no parent tape/profiler/plan/cache
        state, even when every one of those is live at fork time."""
        from repro.nn.compile import CompiledStep
        from repro.nn.tracer import trace
        from repro.obs.scope import Profiler

        step = CompiledStep(lambda x: x, name="poisoned")
        step.plans[("sig",)] = object()  # a live "compiled plan" to inherit
        runner_module._CAMPUS_CACHE["poison"] = object()
        try:
            with Profiler(), trace():
                pool = WorkerVecEnv(_fresh_env(toy_campus, toy_stops), 2, 2)
            try:
                for w in range(pool.num_workers):
                    probe = pool._debug_probe(worker=w)
                    assert probe["pid"] != os.getpid()
                    assert probe["tracer_active"] is False
                    assert probe["profiler_active"] is False
                    assert probe["compiled_plans"] == 0
                    assert probe["campus_cache_entries"] == 0
            finally:
                pool.close()
            # The parent's state survives untouched.
            assert len(step.plans) == 1
            assert "poison" in runner_module._CAMPUS_CACHE
        finally:
            runner_module._CAMPUS_CACHE.pop("poison", None)
            step.plans.clear()


class TestCrashPropagation:
    def test_worker_exception_raises_with_traceback(self, toy_campus,
                                                    toy_stops):
        pool = WorkerVecEnv(_fresh_env(toy_campus, toy_stops), 4, 2)
        pool.reset()
        pool._inject_crash(worker=0)
        ugv, uav = _random_actions(np.random.default_rng(0), 4,
                                   pool.num_stops)
        with pytest.raises(WorkerError) as excinfo:
            pool.step(ugv, uav)
        # The learner-side error carries the worker's own traceback.
        assert "injected worker crash" in str(excinfo.value)
        assert "Traceback" in str(excinfo.value)
        pool.close()  # idempotent after the crash teardown

    def test_killed_worker_raises_instead_of_hanging(self, toy_campus,
                                                     toy_stops):
        pool = WorkerVecEnv(_fresh_env(toy_campus, toy_stops), 2, 2)
        pool.reset()
        os.kill(pool._procs[1].pid, signal.SIGKILL)
        pool._procs[1].join(timeout=5.0)
        ugv, uav = _random_actions(np.random.default_rng(0), 2,
                                   pool.num_stops)
        with pytest.raises(WorkerError, match="died unexpectedly"):
            pool.step(ugv, uav)
        pool.close()

    def test_close_is_idempotent(self, toy_campus, toy_stops):
        pool = WorkerVecEnv(_fresh_env(toy_campus, toy_stops), 2, 2)
        pool.reset()
        pool.close()
        pool.close()
        assert all(not p.is_alive() for p in pool._procs)


# ----------------------------------------------------------------------
# End-to-end: run_training with --workers, kill-at-every-iteration resume
# ----------------------------------------------------------------------
SMOKE = get_preset("smoke")
ITERATIONS = SMOKE.train_iterations
RUN_KWARGS = dict(num_ugvs=2, num_uavs_per_ugv=1, seed=0)
NUM_ENVS = 4


class _KillAfter(TrainingLogger):
    """TrainingLogger that SIGTERMs the process after record ``kill_at``."""

    kill_at: int | None = None

    def __call__(self, record) -> None:
        super().__call__(record)
        if self.kill_at is not None and self.count == self.kill_at:
            os.kill(os.getpid(), signal.SIGTERM)


def _run(tmp_path, name, *, num_workers, resume=None, kill_at=None,
         monkeypatch=None):
    if kill_at is not None:
        assert monkeypatch is not None
        logger = type("KillLogger", (_KillAfter,), {"kill_at": kill_at})
        monkeypatch.setattr(runner_module, "TrainingLogger", logger)
    try:
        return run_training("garl", "kaist", SMOKE, num_envs=NUM_ENVS,
                            num_workers=num_workers,
                            checkpoint_dir=tmp_path / name, save_every=1,
                            resume=resume, **RUN_KWARGS)
    finally:
        if kill_at is not None:
            monkeypatch.setattr(runner_module, "TrainingLogger", TrainingLogger)


def _telemetry_bytes(tmp_path, name) -> bytes:
    return (tmp_path / name / "train.jsonl").read_bytes()


@pytest.fixture(scope="module")
def workers_control(tmp_path_factory):
    """Uninterrupted workers=1 and workers=2 smoke runs (the references)."""
    tmp = tmp_path_factory.mktemp("workers_control")
    out = {}
    for num_workers in (1, 2):
        record, _ = _run(tmp, f"w{num_workers}", num_workers=num_workers)
        out[num_workers] = (record, _telemetry_bytes(tmp, f"w{num_workers}"))
    return out


def test_worker_count_does_not_change_telemetry(workers_control):
    """workers=2 training is byte-identical to workers=1 (≡ in-process)."""
    record1, bytes1 = workers_control[1]
    record2, bytes2 = workers_control[2]
    assert bytes2 == bytes1
    assert record2.metrics == record1.metrics


@pytest.mark.parametrize("kill_at", range(1, ITERATIONS))
def test_workers2_kill_at_every_iteration_resumes_bit_for_bit(
        tmp_path, monkeypatch, workers_control, kill_at):
    """SIGTERM a workers=2 run at iteration ``kill_at``; the resumed run's
    telemetry must be byte-identical to the uninterrupted control's."""
    name = f"killed_w2_{kill_at}"

    with pytest.raises(TrainingInterrupted) as excinfo:
        _run(tmp_path, name, num_workers=2, kill_at=kill_at,
             monkeypatch=monkeypatch)
    interrupted = excinfo.value
    assert interrupted.iterations_completed == kill_at
    assert interrupted.checkpoint_path.exists()
    partial = _telemetry_bytes(tmp_path, name)
    control_record, control_bytes = workers_control[2]
    assert control_bytes.startswith(partial)
    assert partial != control_bytes

    record, _ = _run(tmp_path, name, num_workers=2, resume="latest")
    assert _telemetry_bytes(tmp_path, name) == control_bytes
    assert record.metrics == control_record.metrics
    assert record.extra["resumed_from_iteration"] == kill_at


def test_workers1_checkpoint_resumes_under_workers2(tmp_path, monkeypatch,
                                                    workers_control):
    """num_workers is not part of the config fingerprint: a run killed at
    workers=1 may resume with workers=2 and still match the control."""
    name = "cross_worker_resume"
    with pytest.raises(TrainingInterrupted):
        _run(tmp_path, name, num_workers=1, kill_at=1, monkeypatch=monkeypatch)
    record, _ = _run(tmp_path, name, num_workers=2, resume="latest")
    control_record, control_bytes = workers_control[1]
    assert _telemetry_bytes(tmp_path, name) == control_bytes
    assert record.metrics == control_record.metrics
