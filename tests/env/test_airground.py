"""Tests for the AirGroundEnv step mechanics (Section III)."""

import numpy as np
import pytest

from repro.env import AirGroundEnv, EnvConfig


def stay_actions(env):
    return [g.stop for g in env.ugvs]


def none_uav_actions(env):
    return [None] * env.config.num_uavs


class TestReset:
    def test_initial_placement_at_centre(self, toy_env):
        toy_env.reset()
        centre_stop = toy_env.stops.nearest_stop(toy_env.campus.center)
        for g in toy_env.ugvs:
            assert g.stop == centre_stop
        for v in toy_env.uavs:
            assert not v.airborne
            assert v.energy == toy_env.config.uav_energy

    def test_sensor_data_in_range(self, toy_env):
        toy_env.reset()
        cfg = toy_env.config
        for s in toy_env.sensors:
            assert cfg.sensor_data_min <= s.initial_data <= cfg.sensor_data_max
            assert s.remaining == s.initial_data

    def test_reseed_reproducible(self, toy_env):
        toy_env.reset(seed=123)
        data1 = [s.initial_data for s in toy_env.sensors]
        toy_env.reset(seed=123)
        data2 = [s.initial_data for s in toy_env.sensors]
        np.testing.assert_allclose(data1, data2)

    def test_data_weights_applied(self, toy_campus, toy_stops):
        weights = np.full(toy_campus.num_sensors, 3.0)
        env = AirGroundEnv(toy_campus, EnvConfig(num_ugvs=1, num_uavs_per_ugv=1,
                                                 episode_len=5),
                           stops=toy_stops, seed=0, data_weights=weights)
        env.reset()
        cfg = env.config
        for s in env.sensors:
            assert s.initial_data >= 3.0 * cfg.sensor_data_min

    def test_data_weights_validated(self, toy_campus, toy_stops):
        with pytest.raises(ValueError):
            AirGroundEnv(toy_campus, EnvConfig(), stops=toy_stops,
                         data_weights=np.ones(3))
        with pytest.raises(ValueError):
            AirGroundEnv(toy_campus, EnvConfig(), stops=toy_stops,
                         data_weights=np.zeros(toy_campus.num_sensors))


class TestUGVMovement:
    def test_move_to_reachable_stop(self, toy_env):
        toy_env.reset()
        ugv = toy_env.ugvs[0]
        target = next(s for s in toy_env.stops.neighbors(ugv.stop))
        actions = stay_actions(toy_env)
        actions[0] = target
        toy_env.step(actions, none_uav_actions(toy_env))
        assert toy_env.ugvs[0].stop == target
        np.testing.assert_allclose(toy_env.ugvs[0].position,
                                   toy_env.stops.positions[target])

    def test_unreachable_target_means_stay(self, toy_campus, toy_stops):
        cfg = EnvConfig(num_ugvs=1, num_uavs_per_ugv=1, episode_len=5,
                        ugv_max_step=50.0)  # less than one 75 m hop
        env = AirGroundEnv(toy_campus, cfg, stops=toy_stops, seed=0)
        env.reset()
        start = env.ugvs[0].stop
        far = (start + toy_stops.num_stops // 2) % toy_stops.num_stops
        env.step([far], [None])
        assert env.ugvs[0].stop == start

    def test_invalid_stop_index_raises(self, toy_env):
        toy_env.reset()
        with pytest.raises(ValueError):
            toy_env.step([9999, 0], none_uav_actions(toy_env))

    def test_action_count_validated(self, toy_env):
        toy_env.reset()
        with pytest.raises(ValueError):
            toy_env.step([0], none_uav_actions(toy_env))
        with pytest.raises(ValueError):
            toy_env.step(stay_actions(toy_env), [None])


class TestReleaseProtocol:
    def test_release_launches_uavs(self, toy_env):
        toy_env.reset()
        actions = stay_actions(toy_env)
        actions[0] = toy_env.release_action
        res = toy_env.step(actions, none_uav_actions(toy_env))
        assert toy_env.ugvs[0].is_waiting
        for v in toy_env.uavs_of(0):
            assert v.airborne
            assert res.uav_observations[v.index] is not None
        for v in toy_env.uavs_of(1):
            assert not v.airborne

    def test_waiting_ugv_ignores_actions(self, toy_env):
        toy_env.reset()
        actions = stay_actions(toy_env)
        actions[0] = toy_env.release_action
        toy_env.step(actions, none_uav_actions(toy_env))
        stop_before = toy_env.ugvs[0].stop
        # Try to move while waiting: must be ignored.
        neighbour = toy_env.stops.neighbors(stop_before)[0]
        actions = stay_actions(toy_env)
        actions[0] = neighbour
        res = toy_env.step(actions, none_uav_actions(toy_env))
        assert toy_env.ugvs[0].stop == stop_before
        assert not res.ugv_actionable[0] or not toy_env.ugvs[0].is_waiting

    def test_uavs_dock_after_window(self, toy_env):
        toy_env.reset()
        t_rls = toy_env.config.release_duration
        actions = stay_actions(toy_env)
        actions[0] = toy_env.release_action
        toy_env.step(actions, none_uav_actions(toy_env))
        for _ in range(t_rls - 1):
            assert toy_env.ugvs[0].is_waiting
            toy_env.step(stay_actions(toy_env), none_uav_actions(toy_env))
        assert not toy_env.ugvs[0].is_waiting
        for v in toy_env.uavs_of(0):
            assert not v.airborne
            assert v.energy == toy_env.config.uav_energy  # recharged
            np.testing.assert_allclose(v.position, toy_env.ugvs[0].position)

    def test_release_counted(self, toy_env):
        toy_env.reset()
        actions = stay_actions(toy_env)
        actions[0] = toy_env.release_action
        toy_env.step(actions, none_uav_actions(toy_env))
        assert all(v.releases == 1 for v in toy_env.uavs_of(0))
        assert all(v.releases == 0 for v in toy_env.uavs_of(1))


class TestUAVFlight:
    def _release_all(self, env):
        env.reset()
        env.step([env.release_action] * env.config.num_ugvs,
                 none_uav_actions(env))

    def test_movement_clipped_to_max_step(self, toy_env):
        self._release_all(toy_env)
        start = toy_env.uavs[0].position.copy()
        actions = none_uav_actions(toy_env)
        actions[0] = np.array([1e6, 0.0])
        toy_env.step(stay_actions(toy_env), actions)
        moved = np.linalg.norm(toy_env.uavs[0].position - start)
        assert moved <= toy_env.config.uav_max_step + 1e-6

    def test_crash_into_building_blocks_and_penalises(self, toy_env):
        self._release_all(toy_env)
        uav = toy_env.uavs[0]
        # Approach building A from the north (out of every sensor's range)
        # and aim straight at it.
        uav.position = np.array([125.0, 190.0])
        actions = none_uav_actions(toy_env)
        actions[0] = np.array([0.0, -50.0])
        res = toy_env.step(stay_actions(toy_env), actions)
        np.testing.assert_allclose(toy_env.uavs[0].position, [125.0, 190.0])
        assert toy_env.uavs[0].crashes == 1
        assert res.uav_rewards[0] <= -toy_env.config.crash_penalty + 1e-9

    def test_workzone_bounds_enforced(self, toy_env):
        self._release_all(toy_env)
        uav = toy_env.uavs[0]
        uav.position = np.array([10.0, 10.0])
        actions = none_uav_actions(toy_env)
        actions[0] = np.array([-100.0, -100.0])
        toy_env.step(stay_actions(toy_env), actions)
        assert (toy_env.uavs[0].position >= 0).all()

    def test_energy_consumed_by_flight(self, toy_env):
        self._release_all(toy_env)
        e0 = toy_env.uavs[0].energy
        actions = none_uav_actions(toy_env)
        actions[0] = np.array([0.0, 50.0])
        toy_env.step(stay_actions(toy_env), actions)
        spent = e0 - toy_env.uavs[0].energy
        assert spent == pytest.approx(50.0 * toy_env.config.energy_per_metre, rel=1e-6)

    def test_exhausted_uav_docks_early(self, toy_campus, toy_stops):
        cfg = EnvConfig(num_ugvs=1, num_uavs_per_ugv=1, episode_len=10,
                        uav_energy=0.3, release_duration=8)  # 30 m of range
        env = AirGroundEnv(toy_campus, cfg, stops=toy_stops, seed=0)
        env.reset()
        env.step([env.release_action], [None])
        env.step([0], [np.array([100.0, 0.0])])  # drains the battery
        assert not env.uavs[0].airborne  # docked early
        assert env.uavs[0].energy == cfg.uav_energy  # recharged


class TestCollectionAndRewards:
    def test_data_collected_near_sensor(self, toy_env):
        toy_env.reset()
        toy_env.step([toy_env.release_action] * 2, none_uav_actions(toy_env))
        uav = toy_env.uavs[0]
        sensor = toy_env.sensors[0]
        uav.position = sensor.position + np.array([10.0, 0.0])
        before = sensor.remaining
        res = toy_env.step(stay_actions(toy_env), none_uav_actions(toy_env))
        assert sensor.remaining < before
        assert res.info["collected_this_step"] > 0

    def test_collection_capped_at_rate(self, toy_env):
        toy_env.reset()
        toy_env.step([toy_env.release_action] * 2, none_uav_actions(toy_env))
        uav = toy_env.uavs[0]
        sensor = toy_env.sensors[0]
        uav.position = sensor.position.copy()
        # Move the other UAVs far away so only one collects.
        for other in toy_env.uavs[1:]:
            if other.airborne:
                other.position = np.array([390.0, 10.0])
        before = sensor.remaining
        toy_env.step(stay_actions(toy_env), none_uav_actions(toy_env))
        drained = before - sensor.remaining
        assert drained <= toy_env.config.collect_rate + 1e-9

    def test_ugv_reward_equals_its_uavs_collection(self, toy_env):
        toy_env.reset()
        toy_env.step([toy_env.release_action, toy_env.ugvs[1].stop],
                     none_uav_actions(toy_env))
        for v in toy_env.uavs_of(0):
            v.position = toy_env.sensors[0].position.copy()
        before = sum(s.remaining for s in toy_env.sensors)
        res = toy_env.step(stay_actions(toy_env), none_uav_actions(toy_env))
        collected = before - sum(s.remaining for s in toy_env.sensors)
        assert res.ugv_rewards[0] == pytest.approx(collected)
        assert res.ugv_rewards[1] == 0.0  # Eqn. (12): no release, no reward

    def test_effective_release_needs_collection(self, toy_env):
        toy_env.reset()
        t_rls = toy_env.config.release_duration
        toy_env.step([toy_env.release_action] * 2, none_uav_actions(toy_env))
        for _ in range(t_rls - 1):
            toy_env.step(stay_actions(toy_env), none_uav_actions(toy_env))
        # UAVs hovered at the centre far from sensors: nothing collected.
        assert all(v.effective_releases == 0 for v in toy_env.uavs)
        assert toy_env.metrics().zeta == 0.0


class TestInvariantsAndLifecycle:
    def test_data_conservation_random_episode(self, toy_env):
        rng = np.random.default_rng(0)
        res = toy_env.reset()
        initial_total = sum(s.initial_data for s in toy_env.sensors)
        collected_total = 0.0
        while not res.done:
            actions = []
            for obs in res.ugv_observations:
                actions.append(rng.choice(np.nonzero(obs.action_mask)[0]))
            uav_actions = [None if o is None else rng.normal(size=2) * 60
                           for o in res.uav_observations]
            res = toy_env.step(actions, uav_actions)
            collected_total += res.info["collected_this_step"]
        remaining_total = sum(s.remaining for s in toy_env.sensors)
        assert collected_total + remaining_total == pytest.approx(initial_total)

    def test_step_after_done_raises(self, toy_env):
        res = toy_env.reset()
        while not res.done:
            res = toy_env.step(stay_actions(toy_env), none_uav_actions(toy_env))
        with pytest.raises(RuntimeError):
            toy_env.step(stay_actions(toy_env), none_uav_actions(toy_env))

    def test_metrics_bounded(self, toy_env):
        rng = np.random.default_rng(1)
        res = toy_env.reset()
        while not res.done:
            actions = [rng.choice(np.nonzero(o.action_mask)[0])
                       for o in res.ugv_observations]
            uav_actions = [None if o is None else rng.normal(size=2) * 80
                           for o in res.uav_observations]
            res = toy_env.step(actions, uav_actions)
            snap = toy_env.metrics()
            assert 0.0 <= snap.psi <= 1.0
            assert 0.0 <= snap.xi <= 1.0 + 1e-9
            assert 0.0 <= snap.zeta <= 1.0
            assert snap.beta >= 0.0

    def test_same_seed_same_trajectory(self, toy_campus, toy_stops):
        cfg = EnvConfig(num_ugvs=2, num_uavs_per_ugv=1, episode_len=8)

        def run(seed):
            env = AirGroundEnv(toy_campus, cfg, stops=toy_stops, seed=seed)
            rng = np.random.default_rng(0)
            res = env.reset()
            rewards = []
            while not res.done:
                actions = [rng.choice(np.nonzero(o.action_mask)[0])
                           for o in res.ugv_observations]
                uav_actions = [None if o is None else rng.normal(size=2) * 50
                               for o in res.uav_observations]
                res = env.step(actions, uav_actions)
                rewards.append(res.ugv_rewards.sum())
            return np.array(rewards)

        np.testing.assert_allclose(run(9), run(9))
