"""Exporters: Chrome trace schema (golden file), JSONL, text tables."""

import json
from pathlib import Path

import pytest

from repro.obs import (
    OpProfile,
    OpStats,
    Profiler,
    chrome_trace_events,
    format_op_table,
    format_top_table,
    write_chrome_trace,
    write_profile_jsonl,
)
from repro.obs.scope import counter_add, gauge_set, histogram_observe, scope

GOLDEN = Path(__file__).parent / "data" / "chrome_trace_golden.json"


def make_profiler() -> Profiler:
    """A deterministic profiler snapshot (no real timing involved)."""
    prof = Profiler()
    prof.events = [("train", 0.0, 0.5), ("train/rollout", 0.1, 0.2)]
    prof._attributed_seconds = 0.5
    prof.wall_seconds = 0.5
    return prof


def make_ops() -> OpProfile:
    row = OpStats("matmul", "MCGCN.attention", "core.mc_gcn")
    row.calls, row.seconds, row.bytes, row.flops = 2, 0.25, 1024, 4096.0
    events = [("matmul [MCGCN.attention]", 0.05, 0.125),
              ("matmul [MCGCN.attention]", 0.3, 0.125)]
    return OpProfile([row], events, wall_seconds=0.5)


class TestChromeTraceGolden:
    def test_trace_file_matches_golden(self, tmp_path):
        """The exported file is byte-identical to the checked-in golden.

        This pins the schema: ``X``/``M`` events only, µs ``ts``/``dur``,
        fixed pid/tid lanes, the top-level ``traceEvents`` envelope.  A
        diff here means every previously written trace changed meaning —
        regenerate the golden only for a deliberate format change.
        """
        path = write_chrome_trace(tmp_path / "trace.json",
                                  make_profiler(), make_ops())
        assert path.read_text() == GOLDEN.read_text()

    def test_golden_is_valid_trace_event_json(self):
        payload = json.loads(GOLDEN.read_text())
        assert set(payload) == {"traceEvents", "displayTimeUnit", "otherData"}
        for ev in payload["traceEvents"]:
            assert ev["ph"] in ("X", "M")
            assert ev["pid"] == 1 and ev["tid"] in (1, 2)
            if ev["ph"] == "X":
                assert ev["ts"] >= 0 and ev["dur"] >= 0
                assert ev["cat"] in ("scope", "op")
                assert ev["name"]


class TestChromeTraceEvents:
    def test_real_profile_round_trips(self, tmp_path):
        import time

        with Profiler() as prof:
            with scope("work"):
                time.sleep(0.002)
        path = write_chrome_trace(tmp_path / "t.json", prof)
        payload = json.loads(path.read_text())
        xs = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 1
        assert xs[0]["name"] == "work"
        assert xs[0]["dur"] >= 2000  # microseconds

    def test_ops_land_on_second_lane(self):
        events = chrome_trace_events(None, make_ops())
        ops = [e for e in events if e["ph"] == "X"]
        assert all(e["tid"] == 2 and e["cat"] == "op" for e in ops)

    def test_empty_inputs_still_emit_metadata(self):
        events = chrome_trace_events(None, None)
        assert all(e["ph"] == "M" for e in events)


class TestJsonl:
    def test_line_kinds_and_meta_first(self, tmp_path):
        with Profiler() as prof:
            with scope("work"):
                counter_add("steps", 3)
                gauge_set("lr", 0.1)
                histogram_observe("loss", 0.5)
        path = write_profile_jsonl(tmp_path / "p.jsonl", prof, make_ops())
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["kind"] == "meta"
        assert lines[0]["scope_coverage"] == pytest.approx(prof.coverage())
        kinds = {l["kind"] for l in lines}
        assert kinds == {"meta", "scope", "counter", "gauge", "histogram", "op"}
        counter = next(l for l in lines if l["kind"] == "counter")
        assert counter == {"kind": "counter", "name": "steps", "value": 3}

    def test_ops_only(self, tmp_path):
        path = write_profile_jsonl(tmp_path / "p.jsonl", None, make_ops())
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["op_calls"] == 2
        assert lines[1]["kind"] == "op"
        assert lines[1]["op"] == "matmul"


class TestTables:
    def test_top_table_mentions_scopes_and_coverage(self):
        import time

        with Profiler() as prof:
            with scope("rollout"):
                time.sleep(0.002)
        table = format_top_table(prof)
        assert "rollout" in table
        assert "attributed to named scopes" in table
        assert "%" in table

    def test_op_table_columns(self):
        table = format_op_table(make_ops())
        assert "matmul" in table
        assert "MCGCN.attention" in table
        assert "core.mc_gcn" in table
        assert "all ops" in table
        # 0.25 s of 0.5 s wall: 50% on the row, 50% on the footer.
        assert table.count("50.0%") == 2
