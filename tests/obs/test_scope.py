"""Scope-timer semantics: paths, partitioning, coverage, installation."""

import time

import pytest

from repro.obs import Profiler
from repro.obs.scope import (
    _NULL_SCOPE,
    active_profiler,
    counter_add,
    gauge_set,
    histogram_observe,
    is_profiling,
    scope,
)


class TestDisabled:
    def test_no_profiler_installed_by_default(self):
        assert not is_profiling()
        assert active_profiler() is None

    def test_scope_returns_shared_null_scope(self):
        # One shared object regardless of name: no allocation per call.
        assert scope("a") is scope("b") is _NULL_SCOPE

    def test_null_scope_is_reentrant(self):
        with scope("a"):
            with scope("a"):
                pass

    def test_metric_helpers_are_noops(self):
        counter_add("c")
        gauge_set("g", 1.0)
        histogram_observe("h", 0.5)  # nothing to assert: must not raise


class TestPaths:
    def test_flat_and_nested_paths(self):
        with Profiler() as prof:
            with scope("train"):
                with scope("rollout"):
                    pass
                with scope("rollout"):
                    pass
            with scope("eval"):
                pass
        assert set(prof.stats) == {"train", "train/rollout", "eval"}
        assert prof.stats["train/rollout"].count == 2
        assert prof.stats["train"].count == 1

    def test_slash_in_name_declares_levels(self):
        with Profiler() as prof:
            with scope("update"):
                with scope("forward/ugv"):
                    pass
        assert "update/forward/ugv" in prof.stats
        stats = prof.stats["update/forward/ugv"]
        assert stats.name == "ugv"
        assert stats.depth == 2

    def test_self_seconds_partition(self):
        with Profiler() as prof:
            with scope("outer"):
                time.sleep(0.01)
                with scope("inner"):
                    time.sleep(0.01)
        outer, inner = prof.stats["outer"], prof.stats["outer/inner"]
        assert outer.total_seconds >= inner.total_seconds
        assert outer.self_seconds == pytest.approx(
            outer.total_seconds - inner.total_seconds)
        # Summing self time over all paths reproduces the root total.
        total_self = sum(s.self_seconds for s in prof)
        assert total_self == pytest.approx(outer.total_seconds)

    def test_attributed_counts_root_scopes_only(self):
        with Profiler() as prof:
            with scope("a"):
                with scope("b"):
                    pass
        assert prof.attributed_seconds == pytest.approx(
            prof.stats["a"].total_seconds)

    def test_min_max_bounds(self):
        with Profiler() as prof:
            for _ in range(3):
                with scope("s"):
                    pass
        s = prof.stats["s"]
        assert 0.0 <= s.min_seconds <= s.max_seconds <= s.total_seconds


class TestProfilerLifecycle:
    def test_installation_visible_and_uninstalled_on_exit(self):
        with Profiler() as prof:
            assert is_profiling()
            assert active_profiler() is prof
        assert not is_profiling()

    def test_nested_installation_rejected(self):
        with Profiler():
            with pytest.raises(RuntimeError, match="already installed"):
                Profiler().__enter__()
        assert not is_profiling()  # failed enter must not clobber cleanup

    def test_uninstalled_even_on_exception(self):
        with pytest.raises(ValueError):
            with Profiler():
                raise ValueError("boom")
        assert not is_profiling()

    def test_wall_seconds_set_on_exit(self):
        prof = Profiler()
        with prof:
            time.sleep(0.005)
        assert prof.wall_seconds is not None
        assert prof.wall_seconds >= 0.005

    def test_coverage_high_for_fully_scoped_workload(self):
        with Profiler() as prof:
            with scope("work"):
                time.sleep(0.02)
        assert 0.9 <= prof.coverage() <= 1.0

    def test_events_recorded_and_capped(self):
        with Profiler(max_events=3) as prof:
            for _ in range(5):
                with scope("s"):
                    pass
        assert len(prof.events) == 3
        assert prof.stats["s"].count == 5  # aggregation keeps going
        path, start, dur = prof.events[0]
        assert path == "s" and start >= 0.0 and dur >= 0.0

    def test_keep_events_false(self):
        with Profiler(keep_events=False) as prof:
            with scope("s"):
                pass
        assert prof.events == []

    def test_sorted_stats(self):
        with Profiler() as prof:
            with scope("slow"):
                time.sleep(0.01)
            with scope("fast"):
                pass
        ordered = prof.sorted_stats("self_seconds")
        assert ordered[0].path == "slow"


class TestMetricHelpers:
    def test_helpers_route_to_installed_registry(self):
        with Profiler() as prof:
            counter_add("env/steps", 5)
            counter_add("env/steps")
            gauge_set("train/lr", 3e-4)
            histogram_observe("loss", 0.25)
        snap = prof.metrics.as_dict()
        assert snap["counters"]["env/steps"] == 6
        assert snap["gauges"]["train/lr"] == pytest.approx(3e-4)
        assert snap["histograms"]["loss"]["count"] == 1

    def test_external_registry_attaches(self):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        reg.counter("pre").add(2)
        with Profiler(registry=reg) as prof:
            counter_add("pre", 1)
        assert prof.metrics is reg
        assert reg.counter("pre").value == 3
