"""Per-op profiler: FLOP estimates, attribution, provenance, labels."""

import numpy as np
import pytest

from repro.nn import Tensor, annotate
from repro.obs.opprof import (
    OpProfile,
    OpStats,
    _module_from_site,
    estimate_flops,
    profile_ops,
)


class TestEstimateFlops:
    def test_matmul_counts_2mnk(self):
        # (4, 5) @ (5, 3): 2 * 4 * 3 * 5
        assert estimate_flops("matmul", (4, 3), [(4, 5), (5, 3)]) == 120.0

    def test_data_movement_is_free(self):
        assert estimate_flops("reshape", (100,), [(10, 10)]) == 0.0
        assert estimate_flops("transpose", (3, 4), [(4, 3)]) == 0.0

    def test_reduction_counts_input_elements(self):
        assert estimate_flops("sum", (), [(10, 10)]) == 100.0

    def test_softmax_composite_factor(self):
        assert estimate_flops("softmax", (8,), [(8,)]) == 5.0 * 8

    def test_pointwise_counts_output_elements(self):
        assert estimate_flops("add", (4, 4), [(4, 4), (4, 4)]) == 16.0


class TestModuleFromSite:
    def test_repro_package_path(self):
        site = "/x/src/repro/core/mc_gcn.py:118 in forward"
        assert _module_from_site(site) == "core.mc_gcn"

    def test_outside_package_keeps_file_name(self):
        assert _module_from_site("/tmp/script.py:3 in <module>") == "script"


class TestProfileOps:
    def _workload(self):
        rng = np.random.default_rng(0)
        a = Tensor(rng.normal(size=(4, 5)))
        b = Tensor(rng.normal(size=(5, 3)))
        return (a @ b).relu().sum()

    def test_aggregates_ops(self):
        prof = profile_ops(self._workload)
        by_op = {row.op: row for row in prof.rows}
        assert {"matmul", "relu", "sum"} <= set(by_op)
        assert by_op["matmul"].calls == 1
        assert by_op["matmul"].flops == pytest.approx(2.0 * 4 * 3 * 5)
        assert by_op["matmul"].bytes == 4 * 3 * 8
        assert all(row.seconds >= 0.0 for row in prof.rows)

    def test_wall_and_attribution_accounting(self):
        prof = profile_ops(self._workload)
        assert prof.wall_seconds > 0.0
        assert prof.total_op_seconds <= prof.wall_seconds
        assert prof.total_calls == sum(r.calls for r in prof.rows)
        assert len(prof.events) == prof.total_calls

    def test_result_kept(self):
        prof = profile_ops(self._workload)
        assert isinstance(prof.result, Tensor)

    def test_module_provenance_points_at_caller(self):
        prof = profile_ops(self._workload)
        # This test file is outside the repro package, so the module
        # column falls back to the bare file name — and must NOT point
        # at the profiler's own machinery (opprof / tracer / tensor).
        modules = {row.module for row in prof.rows}
        assert modules == {"test_opprof"}

    def test_site_provenance_off(self):
        prof = profile_ops(self._workload, site_provenance=False)
        assert {row.module for row in prof.rows} == {""}

    def test_annotate_labels_group_rows(self):
        def workload():
            x = Tensor(np.ones((3, 3)))
            y = annotate(x @ x, "toy.square")
            return y.sum()

        prof = profile_ops(workload)
        labelled = [r for r in prof.rows if r.label == "toy.square"]
        assert len(labelled) == 1
        assert labelled[0].op == "matmul"
        name, _, _ = prof.events[0]
        assert name == "matmul [toy.square]"

    def test_event_cap(self):
        prof = profile_ops(self._workload, max_events=1)
        assert len(prof.events) == 1
        assert prof.total_calls >= 3  # aggregation unaffected by the cap

    def test_top_ordering(self):
        prof = profile_ops(self._workload)
        top = prof.top(len(prof.rows))
        assert [r.seconds for r in top] == sorted(
            (r.seconds for r in top), reverse=True)
        assert prof.top(1, key="flops")[0].op == "matmul"


class TestOpProfileContainer:
    def test_len_and_totals(self):
        row = OpStats("matmul", "", "core.mc_gcn")
        row.calls, row.seconds = 2, 0.5
        prof = OpProfile([row], [("matmul", 0.0, 0.25)], wall_seconds=1.0)
        assert len(prof) == 1
        assert prof.total_op_seconds == 0.5
        assert prof.total_calls == 2
