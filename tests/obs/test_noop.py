"""Disabled-mode guarantees: the instrumentation must cost nothing.

Two load-bearing properties when no :class:`~repro.obs.Profiler` is
installed (the default for every training run):

* the scope/metric primitives create **zero extra autodiff tape nodes**
  — instrumented hot paths record the exact same tape as uninstrumented
  code, so graphcheck invariants and tape-size budgets are unaffected;
* an instrumented training run writes **byte-identical telemetry** to an
  uninstrumented one, profiler installed or not — observability never
  perturbs the science (rng streams, losses, metrics).
"""

import numpy as np

from repro.nn import Tensor, trace
from repro.obs import Profiler
from repro.obs.scope import counter_add, gauge_set, histogram_observe, scope


def _forward(with_scopes: bool) -> int:
    """Run one small forward under a tape trace; return the tape length."""
    rng = np.random.default_rng(0)
    a = Tensor(rng.normal(size=(4, 5)), requires_grad=True)
    b = Tensor(rng.normal(size=(5, 3)), requires_grad=True)
    with trace() as tape:
        if with_scopes:
            with scope("outer"):
                with scope("inner/forward"):
                    out = (a @ b).relu().sum()
                counter_add("calls")
                gauge_set("g", 1.0)
                histogram_observe("h", 0.5)
        else:
            out = (a @ b).relu().sum()
    out.backward()
    return len(tape)


class TestZeroTapeNodes:
    def test_instrumentation_adds_no_tape_entries(self):
        assert _forward(with_scopes=True) == _forward(with_scopes=False)

    def test_enabled_profiler_adds_no_tape_entries_either(self):
        # Even *enabled*, scopes only read the clock — they never touch
        # tensors, so the tape stays identical under a live profiler.
        bare = _forward(with_scopes=False)
        with Profiler():
            assert _forward(with_scopes=True) == bare


class TestTelemetryBytes:
    def _train_once(self, tmp_path, name, toy_campus, toy_stops,
                    profiled: bool) -> bytes:
        from repro.core import GARLAgent, GARLConfig, PPOConfig
        from repro.env import AirGroundEnv, EnvConfig
        from repro.experiments.telemetry import TrainingLogger

        env = AirGroundEnv(toy_campus,
                           EnvConfig(num_ugvs=2, num_uavs_per_ugv=1,
                                     episode_len=8),
                           stops=toy_stops, seed=7)
        agent = GARLAgent(env, GARLConfig(hidden_dim=8, mc_gcn_layers=1,
                                          ecomm_layers=1,
                                          ppo=PPOConfig(epochs=1,
                                                        minibatch_size=16)))
        path = tmp_path / f"{name}.jsonl"
        logger = TrainingLogger(path)
        if profiled:
            with Profiler():
                agent.train(iterations=2, callback=logger)
        else:
            agent.train(iterations=2, callback=logger)
        return path.read_bytes()

    def test_profiled_run_writes_identical_telemetry(self, tmp_path,
                                                     toy_campus, toy_stops):
        plain = self._train_once(tmp_path, "plain", toy_campus, toy_stops,
                                 profiled=False)
        profiled = self._train_once(tmp_path, "profiled", toy_campus,
                                    toy_stops, profiled=True)
        assert plain == profiled
        assert len(plain.splitlines()) == 2
