"""Metrics registry: semantics, state round-trip, checkpoint survival."""

import json

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, Profiler


class TestCounter:
    def test_accumulates(self):
        c = Counter("steps")
        c.add()
        c.add(4)
        assert c.value == 5

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="only increase"):
            Counter("steps").add(-1)


class TestGauge:
    def test_set_overwrites(self):
        g = Gauge("lr")
        g.set(1.0)
        g.set(0.5)
        assert g.value == 0.5


class TestHistogram:
    def test_bucket_placement(self):
        h = Histogram("h", bounds=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        # <=1, <=10, overflow
        assert h.counts == [2, 1, 1]
        assert h.count == 4
        assert h.min == 0.5 and h.max == 100.0
        assert h.mean == pytest.approx(106.5 / 4)

    def test_empty_summary(self):
        h = Histogram("h")
        assert h.mean == 0.0
        assert h.as_dict()["min"] == 0.0 and h.as_dict()["max"] == 0.0

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("h", bounds=(2.0, 1.0))


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        assert len(reg) == 3

    def test_as_dict_is_json_able(self):
        reg = MetricsRegistry()
        reg.counter("a").add(2)
        reg.gauge("b").set(0.1)
        reg.histogram("c").observe(1.5)
        json.dumps(reg.as_dict())  # must not raise

    def test_state_dict_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("env/steps").add(120)
        reg.gauge("train/lr").set(3e-4)
        for v in (0.1, 0.2, 50.0):
            reg.histogram("loss").observe(v)

        restored = MetricsRegistry()
        restored.load_state_dict(json.loads(json.dumps(reg.state_dict())))
        assert restored.as_dict() == reg.as_dict()
        # The restored registry keeps accumulating correctly.
        restored.counter("env/steps").add(1)
        assert restored.counter("env/steps").value == 121
        restored.histogram("loss").observe(0.3)
        assert restored.histogram("loss").count == 4

    def test_load_into_mid_run_keeps_unrelated_metrics(self):
        reg = MetricsRegistry()
        reg.counter("untouched").add(7)
        reg.load_state_dict({"counters": {"restored": 3.0}})
        assert reg.counter("untouched").value == 7
        assert reg.counter("restored").value == 3


class TestCheckpointSurvival:
    """The registry rides along in training checkpoints (extra_state)."""

    CFG = dict(num_ugvs=2, num_uavs_per_ugv=1, seed=0, train_iterations=2)

    def test_registry_saved_and_restored_across_resume(self, tmp_path):
        from repro.experiments import run_training
        from repro.experiments.checkpoint import find_latest

        run_dir = tmp_path / "run"
        with Profiler(keep_events=False) as prof:
            run_training("garl", "kaist", "smoke", checkpoint_dir=run_dir,
                         save_every=1, handle_signals=False, **self.CFG)
        counters = prof.metrics.as_dict()["counters"]
        assert counters["train/iterations"] == 2
        assert counters["env/steps"] > 0
        assert counters["optim/ugv_steps"] > 0

        manifest = json.loads(
            (find_latest(run_dir) / "manifest.json").read_text())
        saved = manifest["extra_state"]["metrics"]
        assert saved["counters"]["train/iterations"] == 2

        # Resume with a fresh profiler: nothing left to train, but the
        # checkpointed registry must be restored into it.
        with Profiler(keep_events=False) as prof2:
            run_training("garl", "kaist", "smoke", checkpoint_dir=run_dir,
                         resume="latest", handle_signals=False, **self.CFG)
        restored = prof2.metrics.as_dict()["counters"]
        assert restored["train/iterations"] == 2
        assert restored["env/steps"] == counters["env/steps"]

    def test_no_profiler_leaves_empty_extra_state(self, tmp_path):
        from repro.experiments import run_training
        from repro.experiments.checkpoint import find_latest

        run_dir = tmp_path / "run"
        run_training("garl", "kaist", "smoke", checkpoint_dir=run_dir,
                     save_every=1, handle_signals=False, **self.CFG)
        manifest = json.loads(
            (find_latest(run_dir) / "manifest.json").read_text())
        assert manifest.get("extra_state", {}) == {}
