"""Tests for stop-graph construction and the structural correlation."""

import networkx as nx
import numpy as np
import pytest

from repro.maps import build_stop_graph


class TestConstruction:
    def test_junctions_become_stops(self, toy_campus, toy_stops):
        # Every road junction position appears among the stops.
        for node in toy_campus.roads.nodes:
            pos = np.asarray(toy_campus.roads.nodes[node]["pos"])
            gaps = np.linalg.norm(toy_stops.positions - pos, axis=1)
            assert gaps.min() < 1e-9

    def test_spacing_bounded_by_interval(self, toy_stops):
        for a, b, data in toy_stops.graph.edges(data=True):
            assert data["length"] <= 75.0 + 1e-9

    def test_connected(self, toy_stops):
        assert nx.is_connected(toy_stops.graph)

    def test_positive_interval_required(self, toy_campus):
        with pytest.raises(ValueError):
            build_stop_graph(toy_campus, interval=0.0)

    def test_interval_controls_density(self, toy_campus):
        coarse = build_stop_graph(toy_campus, interval=150.0)
        fine = build_stop_graph(toy_campus, interval=50.0)
        assert fine.num_stops > coarse.num_stops

    def test_edge_lengths_match_positions(self, toy_stops):
        for a, b, data in toy_stops.graph.edges(data=True):
            gap = np.linalg.norm(toy_stops.positions[a] - toy_stops.positions[b])
            assert data["length"] == pytest.approx(gap)


class TestDistances:
    def test_hop_distances_zero_diagonal(self, toy_stops):
        hops = toy_stops.hop_distances()
        np.testing.assert_array_equal(np.diag(hops), np.zeros(toy_stops.num_stops))

    def test_hop_distances_symmetric(self, toy_stops):
        hops = toy_stops.hop_distances()
        np.testing.assert_allclose(hops, hops.T)

    def test_metre_distances_triangle_inequality_sample(self, toy_stops):
        metres = toy_stops.metre_distances()
        n = toy_stops.num_stops
        rng = np.random.default_rng(0)
        for _ in range(50):
            i, j, k = rng.integers(0, n, 3)
            assert metres[i, j] <= metres[i, k] + metres[k, j] + 1e-9

    def test_metre_distance_at_least_euclidean(self, toy_stops):
        metres = toy_stops.metre_distances()
        pos = toy_stops.positions
        n = toy_stops.num_stops
        for i in range(0, n, 3):
            for j in range(0, n, 3):
                direct = np.linalg.norm(pos[i] - pos[j])
                assert metres[i, j] >= direct - 1e-6

    def test_path_length_matches_matrix(self, toy_stops):
        metres = toy_stops.metre_distances()
        assert toy_stops.path_length(0, 5) == pytest.approx(metres[0, 5])

    def test_path_is_valid_walk(self, toy_stops):
        path = toy_stops.path(0, toy_stops.num_stops - 1)
        for a, b in zip(path[:-1], path[1:]):
            assert toy_stops.graph.has_edge(a, b)


class TestStructuralCorrelation:
    def test_self_correlation_is_one(self, toy_stops):
        s = toy_stops.structural_correlation(q=5)
        np.testing.assert_allclose(np.diag(s), np.ones(toy_stops.num_stops))

    def test_range(self, toy_stops):
        s = toy_stops.structural_correlation(q=5)
        assert (s >= 0).all() and (s <= 1).all()

    def test_threshold_zeroes_far_nodes(self, toy_stops):
        hops = toy_stops.hop_distances()
        s = toy_stops.structural_correlation(q=2)
        far = hops > 2
        assert (s[far] == 0).all()
        near = (hops <= 2)
        assert (s[near] > 0).all()

    def test_monotone_in_distance(self, toy_stops):
        # Closer stops (in hops) must have >= correlation.
        hops = toy_stops.hop_distances()
        s = toy_stops.structural_correlation(q=10)
        i = 0
        order = np.argsort(hops[i])
        values = s[i][order]
        finite = hops[i][order] <= 10
        assert (np.diff(values[finite]) <= 1e-12).all()

    def test_eqn20_formula(self, toy_stops):
        hops = toy_stops.hop_distances()
        s = toy_stops.structural_correlation(q=100)
        np.testing.assert_allclose(s, 1.0 / (hops + 1.0))

    def test_weighted_variant_uses_metres(self, toy_stops):
        metres = toy_stops.metre_distances()
        s = toy_stops.structural_correlation(q=1e9, weighted=True)
        np.testing.assert_allclose(s, 1.0 / (metres + 1.0))

    def test_invalid_threshold(self, toy_stops):
        with pytest.raises(ValueError):
            toy_stops.structural_correlation(q=0)


class TestQueries:
    def test_nearest_stop(self, toy_stops):
        target = toy_stops.positions[3] + np.array([1.0, -1.0])
        assert toy_stops.nearest_stop(target) == 3

    def test_neighbors_sorted(self, toy_stops):
        nbrs = toy_stops.neighbors(0)
        assert nbrs == sorted(nbrs)
        assert all(toy_stops.graph.has_edge(0, n) for n in nbrs)

    def test_stops_within_metres(self, toy_stops):
        reachable = toy_stops.stops_within_metres(0, 200.0)
        assert 0 in reachable
        metres = toy_stops.metre_distances()
        for idx in reachable:
            assert metres[0, idx] <= 200.0
