"""Tests for campus JSON (de)serialisation."""

import json

import numpy as np
import pytest

from repro.maps import (
    build_stop_graph,
    campus_from_dict,
    campus_to_dict,
    load_campus,
    save_campus,
)


class TestRoundTrip:
    def test_geometry_preserved(self, toy_campus, tmp_path):
        path = save_campus(toy_campus, tmp_path / "toy.json")
        loaded = load_campus(path)
        assert loaded.name == toy_campus.name
        assert loaded.width == toy_campus.width
        assert loaded.num_buildings == toy_campus.num_buildings
        np.testing.assert_allclose(loaded.sensor_positions,
                                   toy_campus.sensor_positions)
        np.testing.assert_array_equal(loaded.sensor_buildings,
                                      toy_campus.sensor_buildings)

    def test_roads_preserved(self, toy_campus, tmp_path):
        path = save_campus(toy_campus, tmp_path / "toy.json")
        loaded = load_campus(path)
        assert loaded.roads.number_of_nodes() == toy_campus.roads.number_of_nodes()
        assert loaded.roads.number_of_edges() == toy_campus.roads.number_of_edges()
        # Edge lengths recomputed from positions must match originals.
        total_orig = sum(d["length"] for *_, d in toy_campus.roads.edges(data=True))
        total_new = sum(d["length"] for *_, d in loaded.roads.edges(data=True))
        assert total_new == pytest.approx(total_orig)

    def test_loaded_campus_is_simulatable(self, toy_campus, tmp_path):
        from repro.env import AirGroundEnv, EnvConfig

        loaded = load_campus(save_campus(toy_campus, tmp_path / "toy.json"))
        stops = build_stop_graph(loaded, interval=75.0)
        env = AirGroundEnv(loaded, EnvConfig(num_ugvs=1, num_uavs_per_ugv=1,
                                             episode_len=3), stops=stops, seed=0)
        res = env.reset()
        res = env.step([env.release_action], [None])
        assert res is not None

    def test_json_is_plain(self, toy_campus, tmp_path):
        path = save_campus(toy_campus, tmp_path / "toy.json")
        payload = json.loads(path.read_text())
        assert payload["version"] == 1
        assert isinstance(payload["buildings"][0][0][0], float)


class TestValidation:
    def base(self, toy_campus):
        return campus_to_dict(toy_campus)

    def test_bad_version(self, toy_campus):
        payload = self.base(toy_campus)
        payload["version"] = 99
        with pytest.raises(ValueError):
            campus_from_dict(payload)

    def test_negative_extent(self, toy_campus):
        payload = self.base(toy_campus)
        payload["width"] = -1.0
        with pytest.raises(ValueError):
            campus_from_dict(payload)

    def test_self_loop_edge(self, toy_campus):
        payload = self.base(toy_campus)
        payload["roads"]["edges"].append([0, 0])
        with pytest.raises(ValueError):
            campus_from_dict(payload)

    def test_sensor_host_out_of_range(self, toy_campus):
        payload = self.base(toy_campus)
        payload["sensors"]["buildings"][0] = 999
        with pytest.raises(ValueError):
            campus_from_dict(payload)

    def test_sensor_shape_mismatch(self, toy_campus):
        payload = self.base(toy_campus)
        payload["sensors"]["positions"] = [[1.0, 2.0, 3.0]]
        with pytest.raises(ValueError):
            campus_from_dict(payload)

    def test_host_count_mismatch(self, toy_campus):
        payload = self.base(toy_campus)
        payload["sensors"]["buildings"] = payload["sensors"]["buildings"][:-1]
        with pytest.raises(ValueError):
            campus_from_dict(payload)
