"""Tests for the synthetic KAIST / UCLA campus builders."""

import networkx as nx
import numpy as np
import pytest

from repro.maps import build_campus, build_kaist, build_ucla
from repro.maps.campus import (
    KAIST_BUILDINGS,
    KAIST_HEIGHT,
    KAIST_SENSORS,
    KAIST_WIDTH,
    UCLA_BUILDINGS,
    UCLA_HEIGHT,
    UCLA_SENSORS,
    UCLA_WIDTH,
)
from repro.maps.geometry import point_segment_distance


@pytest.fixture(scope="module")
def kaist():
    return build_kaist()


@pytest.fixture(scope="module")
def ucla():
    return build_ucla()


class TestPaperStatistics:
    def test_kaist_extent(self, kaist):
        assert kaist.width == pytest.approx(1539.63)
        assert kaist.height == pytest.approx(1433.37)

    def test_kaist_counts(self, kaist):
        assert kaist.num_buildings == KAIST_BUILDINGS == 85
        assert kaist.num_sensors == KAIST_SENSORS == 138

    def test_ucla_extent(self, ucla):
        assert ucla.width == pytest.approx(1675.36)
        assert ucla.height == pytest.approx(1737.15)

    def test_ucla_counts(self, ucla):
        assert ucla.num_buildings == UCLA_BUILDINGS == 163
        assert ucla.num_sensors == UCLA_SENSORS == 236

    def test_ucla_more_complex_than_kaist(self, kaist, ucla):
        # The paper: UCLA's road network is more complicated.
        assert ucla.roads.number_of_edges() > kaist.roads.number_of_edges()


class TestStructuralValidity:
    def test_roads_connected(self, kaist, ucla):
        assert nx.is_connected(kaist.roads)
        assert nx.is_connected(ucla.roads)

    def test_buildings_inside_workzone(self, kaist):
        for b in kaist.buildings:
            box = b.bbox
            assert box.min_x >= 0 and box.min_y >= 0
            assert box.max_x <= kaist.width and box.max_y <= kaist.height

    def test_buildings_clear_of_roads(self, kaist):
        edges = list(kaist.road_edges())
        for building in kaist.buildings:
            centre = building.centroid
            dist = min(point_segment_distance(centre, a, b) for a, b in edges)
            assert dist > 10.0  # road margin was enforced

    def test_sensors_attached_to_host_buildings(self, kaist):
        for pos, host in zip(kaist.sensor_positions, kaist.sensor_buildings):
            building = kaist.buildings[host]
            edge_dist = min(point_segment_distance(pos, a, b) for a, b in building.edges())
            assert edge_dist < 1e-6

    def test_ucla_lawn_centre_empty(self, ucla):
        centre = ucla.center
        lawn_radius = 0.16 * min(ucla.width, ucla.height)
        for building in ucla.buildings:
            assert np.linalg.norm(building.centroid - centre) > lawn_radius * 0.5

    def test_ucla_data_split_east_west(self, ucla):
        # The thin-corridor band holds no buildings.
        band_lo, band_hi = ucla.width * 0.42, ucla.width * 0.58
        in_band = [b for b in ucla.buildings if band_lo < b.centroid[0] < band_hi]
        assert not in_band

    def test_point_in_building_and_segment_queries(self, kaist):
        building = kaist.buildings[0]
        centre = building.centroid
        assert kaist.point_in_building(centre)
        assert kaist.segment_hits_building(centre, centre + np.array([500.0, 0.0]))
        assert not kaist.point_in_building((-50.0, -50.0))

    def test_distance_to_road_positive_off_road(self, kaist):
        building = kaist.buildings[0]
        assert kaist.distance_to_road(building.centroid) > 0


class TestDeterminismAndScaling:
    def test_same_seed_same_campus(self):
        a = build_kaist(seed=42)
        b = build_kaist(seed=42)
        np.testing.assert_array_equal(a.sensor_positions, b.sensor_positions)
        assert a.roads.number_of_edges() == b.roads.number_of_edges()

    def test_different_seed_differs(self):
        a = build_kaist(seed=1)
        b = build_kaist(seed=2)
        assert not np.array_equal(a.sensor_positions, b.sensor_positions)

    def test_build_campus_by_name(self):
        assert build_campus("kaist").name == "kaist"
        assert build_campus("UCLA").name == "ucla"

    def test_build_campus_unknown_name(self):
        with pytest.raises(KeyError):
            build_campus("stanford")

    def test_build_campus_invalid_scale(self):
        with pytest.raises(ValueError):
            build_campus("kaist", scale=1.5)
        with pytest.raises(ValueError):
            build_campus("kaist", scale=0.0)

    def test_scaled_campus_shrinks_consistently(self, kaist):
        mini = build_campus("kaist", scale=0.3)
        assert mini.width == pytest.approx(kaist.width * 0.3)
        assert mini.height == pytest.approx(kaist.height * 0.3)
        assert 0 < mini.num_buildings < kaist.num_buildings
        assert 0 < mini.num_sensors < kaist.num_sensors
        assert nx.is_connected(mini.roads)

    def test_scaled_ucla_keeps_corridor_structure(self):
        mini = build_campus("ucla", scale=0.3)
        assert nx.is_connected(mini.roads)
        assert mini.num_sensors >= 6


class TestRandomCampus:
    def test_parameters_respected(self):
        from repro.maps import random_campus

        campus = random_campus("demo", width=600, height=500, buildings=8,
                               sensors=12, seed=3)
        assert campus.name == "demo"
        assert campus.width == 600 and campus.height == 500
        assert campus.num_buildings <= 8 and campus.num_buildings >= 4
        assert campus.num_sensors == 12

    def test_irregular_style(self):
        from repro.maps import random_campus

        campus = random_campus(road_style="irregular", seed=5, junctions=20)
        assert nx.is_connected(campus.roads)

    def test_unknown_style_rejected(self):
        from repro.maps import random_campus

        with pytest.raises(ValueError):
            random_campus(road_style="spiral")

    def test_invalid_counts_rejected(self):
        from repro.maps import random_campus

        with pytest.raises(ValueError):
            random_campus(buildings=0)
        with pytest.raises(ValueError):
            random_campus(width=-5)

    def test_simulatable_end_to_end(self):
        from repro.env import AirGroundEnv, EnvConfig
        from repro.maps import build_stop_graph, random_campus

        campus = random_campus(width=500, height=500, buildings=6, sensors=10,
                               seed=1)
        stops = build_stop_graph(campus)
        env = AirGroundEnv(campus, EnvConfig(num_ugvs=2, num_uavs_per_ugv=1,
                                             episode_len=4), stops=stops, seed=0)
        res = env.reset()
        while not res.done:
            res = env.step([g.stop for g in env.ugvs], [None] * 2)
        assert env.metrics().psi >= 0.0

    def test_deterministic(self):
        from repro.maps import random_campus

        a = random_campus(seed=9)
        b = random_campus(seed=9)
        np.testing.assert_array_equal(a.sensor_positions, b.sensor_positions)
