"""Tests for 2-D geometry primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.maps import (
    Polygon,
    euclidean,
    point_segment_distance,
    rectangle,
    regular_polygon,
    segments_intersect,
)


class TestBasics:
    def test_euclidean(self):
        assert euclidean((0, 0), (3, 4)) == pytest.approx(5.0)

    def test_point_segment_distance_perpendicular(self):
        assert point_segment_distance((0, 1), (-1, 0), (1, 0)) == pytest.approx(1.0)

    def test_point_segment_distance_beyond_endpoint(self):
        assert point_segment_distance((3, 4), (0, 0), (0, 1)) == pytest.approx(
            euclidean((3, 4), (0, 1)))

    def test_point_segment_distance_degenerate_segment(self):
        assert point_segment_distance((1, 1), (0, 0), (0, 0)) == pytest.approx(np.sqrt(2))


class TestSegmentIntersection:
    def test_crossing(self):
        assert segments_intersect((0, 0), (2, 2), (0, 2), (2, 0))

    def test_parallel_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (0, 1), (1, 1))

    def test_collinear_overlapping(self):
        assert segments_intersect((0, 0), (2, 0), (1, 0), (3, 0))

    def test_collinear_disjoint(self):
        assert not segments_intersect((0, 0), (1, 0), (2, 0), (3, 0))

    def test_touching_endpoints(self):
        assert segments_intersect((0, 0), (1, 1), (1, 1), (2, 0))

    def test_t_junction(self):
        assert segments_intersect((0, 0), (2, 0), (1, -1), (1, 0))


class TestPolygon:
    def test_requires_three_vertices(self):
        with pytest.raises(ValueError):
            Polygon([(0, 0), (1, 1)])

    def test_contains_interior_and_exterior(self):
        square = rectangle(0.0, 0.0, 2.0, 2.0)
        assert square.contains((0, 0))
        assert square.contains((0.9, 0.9))
        assert not square.contains((1.5, 0))
        assert not square.contains((0, -2))

    def test_contains_boundary(self):
        square = rectangle(0.0, 0.0, 2.0, 2.0)
        assert square.contains((1.0, 0.0))
        assert square.contains((1.0, 1.0))  # corner

    def test_contains_concave(self):
        # L-shaped polygon.
        poly = Polygon([(0, 0), (2, 0), (2, 1), (1, 1), (1, 2), (0, 2)])
        assert poly.contains((0.5, 1.5))
        assert not poly.contains((1.5, 1.5))

    def test_area_square(self):
        assert rectangle(5.0, 5.0, 3.0, 2.0).area == pytest.approx(6.0)

    def test_area_triangle(self):
        tri = Polygon([(0, 0), (4, 0), (0, 3)])
        assert tri.area == pytest.approx(6.0)

    def test_centroid(self):
        np.testing.assert_allclose(rectangle(3.0, 4.0, 2.0, 2.0).centroid, [3.0, 4.0])

    def test_bbox(self):
        box = rectangle(0.0, 0.0, 4.0, 2.0).bbox
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (-2.0, -1.0, 2.0, 1.0)
        assert box.width == 4.0 and box.height == 2.0

    def test_bbox_expand_and_contains(self):
        box = rectangle(0.0, 0.0, 2.0, 2.0).bbox.expand(1.0)
        assert box.contains((1.9, 1.9))

    def test_intersects_segment_crossing(self):
        square = rectangle(0.0, 0.0, 2.0, 2.0)
        assert square.intersects_segment((-5, 0), (5, 0))

    def test_intersects_segment_endpoint_inside(self):
        square = rectangle(0.0, 0.0, 2.0, 2.0)
        assert square.intersects_segment((0, 0), (10, 10))

    def test_intersects_segment_miss(self):
        square = rectangle(0.0, 0.0, 2.0, 2.0)
        assert not square.intersects_segment((-5, 5), (5, 5))

    def test_perimeter_points_lie_on_boundary(self):
        square = rectangle(0.0, 0.0, 2.0, 2.0)
        pts = square.perimeter_points(25, np.random.default_rng(0))
        assert pts.shape == (25, 2)
        for p in pts:
            dist = min(point_segment_distance(p, a, b) for a, b in square.edges())
            assert dist < 1e-9

    def test_perimeter_points_zero_count(self):
        assert rectangle(0, 0, 1, 1).perimeter_points(0, np.random.default_rng(0)).shape == (0, 2)

    def test_buffered_contains(self):
        square = rectangle(0.0, 0.0, 2.0, 2.0)
        assert square.buffered_contains((1.2, 0.0), margin=0.5)
        assert not square.buffered_contains((2.0, 0.0), margin=0.5)

    def test_regular_polygon_vertices_on_circle(self):
        hexagon = regular_polygon(1.0, 2.0, 3.0, 6)
        radii = np.hypot(hexagon.vertices[:, 0] - 1.0, hexagon.vertices[:, 1] - 2.0)
        np.testing.assert_allclose(radii, np.full(6, 3.0))

    def test_rotated_rectangle_area_preserved(self):
        assert rectangle(0, 0, 3, 2, angle=0.7).area == pytest.approx(6.0)


@settings(max_examples=30, deadline=None)
@given(st.floats(-50, 50), st.floats(-50, 50),
       st.floats(1.0, 20.0), st.floats(1.0, 20.0),
       st.floats(0, np.pi))
def test_rectangle_contains_its_centre(cx, cy, w, h, angle):
    assert rectangle(cx, cy, w, h, angle).contains((cx, cy))


@settings(max_examples=30, deadline=None)
@given(st.integers(3, 10), st.floats(1.0, 10.0))
def test_regular_polygon_contains_centroid_and_area_positive(sides, radius):
    poly = regular_polygon(0.0, 0.0, radius, sides)
    assert poly.contains((0.0, 0.0))
    assert poly.area > 0


@settings(max_examples=30, deadline=None)
@given(st.floats(-10, 10), st.floats(-10, 10),
       st.floats(-10, 10), st.floats(-10, 10))
def test_point_segment_distance_symmetry(ax, ay, bx, by):
    p = (1.0, 2.0)
    d1 = point_segment_distance(p, (ax, ay), (bx, by))
    d2 = point_segment_distance(p, (bx, by), (ax, ay))
    assert d1 == pytest.approx(d2, abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(st.floats(-5, 5), st.floats(-5, 5), st.floats(-5, 5), st.floats(-5, 5))
def test_segments_intersect_symmetric(ax, ay, bx, by):
    s1 = ((ax, ay), (bx, by))
    s2 = ((0.0, 0.0), (1.0, 1.0))
    assert segments_intersect(*s1, *s2) == segments_intersect(*s2, *s1)
