"""Tests for road-network generators."""

import networkx as nx
import numpy as np
import pytest

from repro.maps import grid_network, irregular_network, largest_component, total_road_length


class TestGridNetwork:
    def test_node_and_edge_counts_without_drops(self):
        g = grid_network(1000, 800, rows=4, cols=5)
        assert g.number_of_nodes() == 20
        # 4*4 horizontal + 3*5 vertical
        assert g.number_of_edges() == 4 * 4 + 3 * 5

    def test_connected(self):
        g = grid_network(500, 500, rows=3, cols=3, drop_prob=0.3,
                         rng=np.random.default_rng(0))
        assert nx.is_connected(g)

    def test_positions_within_extent(self):
        g = grid_network(1000, 600, rows=3, cols=4)
        for _, data in g.nodes(data=True):
            x, y = data["pos"]
            assert 0 <= x <= 1000 and 0 <= y <= 600

    def test_edge_lengths_set(self):
        g = grid_network(300, 300, rows=2, cols=2)
        for _, _, data in g.edges(data=True):
            assert data["length"] > 0

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            grid_network(100, 100, rows=1, cols=5)

    def test_jitter_moves_nodes(self):
        a = grid_network(500, 500, rows=3, cols=3, jitter=0.0)
        b = grid_network(500, 500, rows=3, cols=3, jitter=30.0,
                         rng=np.random.default_rng(1))
        pos_a = np.array([a.nodes[n]["pos"] for n in a.nodes])
        pos_b = np.array([b.nodes[n]["pos"] for n in b.nodes])
        assert not np.allclose(np.sort(pos_a, axis=0), np.sort(pos_b, axis=0))


class TestIrregularNetwork:
    def test_connected_and_nonempty(self):
        g = irregular_network(1000, 1000, junctions=30,
                              rng=np.random.default_rng(0), connect_radius=300)
        assert g.number_of_nodes() > 5
        assert nx.is_connected(g)

    def test_keep_region_respected(self):
        def keep(x, y):
            return x < 400

        g = irregular_network(1000, 1000, junctions=25,
                              rng=np.random.default_rng(1), connect_radius=300,
                              keep_region=keep)
        organic = [n for n, d in g.nodes(data=True)]
        xs = [g.nodes[n]["pos"][0] for n in organic]
        assert max(xs) < 400

    def test_corridor_edge_present(self):
        corridor = [((100.0, 500.0), (900.0, 500.0))]
        g = irregular_network(1000, 1000, junctions=20,
                              rng=np.random.default_rng(2), connect_radius=350,
                              corridor_edges=corridor)
        # The long corridor edge must survive into the largest component.
        lengths = [d["length"] for _, _, d in g.edges(data=True)]
        assert max(lengths) >= 750.0


class TestHelpers:
    def test_largest_component_keeps_biggest(self):
        g = nx.Graph()
        for i in range(3):
            g.add_node(i, pos=(float(i), 0.0))
        g.add_edge(0, 1, length=1.0)
        g.add_node(10, pos=(99.0, 99.0))  # isolated
        reduced = largest_component(g)
        assert reduced.number_of_nodes() == 2
        assert set(reduced.nodes) == {0, 1}  # relabelled from sorted order

    def test_largest_component_empty_graph(self):
        g = nx.Graph()
        assert largest_component(g).number_of_nodes() == 0

    def test_total_road_length(self):
        g = nx.Graph()
        g.add_node(0, pos=(0.0, 0.0))
        g.add_node(1, pos=(3.0, 4.0))
        g.add_edge(0, 1, length=5.0)
        assert total_road_length(g) == pytest.approx(5.0)
