"""Positive/negative corpus tests for the PF performance lint rules.

Each rule gets at least one snippet that must fire and one that must
stay silent; the corpus runs through ``lint_source(..., rules=PF_RULES)``
so suppression and line anchoring behave exactly as in production.
"""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis.lint import lint_source
from repro.analysis.perfcheck import build_hot_index
from repro.analysis.perfcheck.rules import PF_RULES, build_pf_rules


def run(source: str, path: str = "src/module.py") -> list:
    return lint_source(textwrap.dedent(source), path, rules=PF_RULES)


def codes(source: str, path: str = "src/module.py") -> list[str]:
    return [d.code for d in run(source, path)]


# ----------------------------------------------------------------------
# PF001 — per-step-array-rebuild
# ----------------------------------------------------------------------
class TestPF001:
    def test_fires_on_comprehension_over_entities(self):
        src = """
            import numpy as np
            def remaining(self):
                return np.array([s.remaining for s in self.sensors])
        """
        assert "PF001" in codes(src)

    def test_fires_on_generator_into_fromiter(self):
        src = """
            import numpy as np
            def stops(self):
                return np.fromiter((g.stop for g in self.ugvs), dtype=int)
        """
        assert "PF001" in codes(src)

    def test_silent_in_lifecycle_methods(self):
        src = """
            import numpy as np
            class Env:
                def __init__(self):
                    self.pos = np.array([s.position for s in self.sensors])
                def reset_state(self):
                    self.rem = np.array([s.remaining for s in self.sensors])
        """
        assert "PF001" not in codes(src)

    def test_silent_on_non_entity_iterables(self):
        src = """
            import numpy as np
            def rows(self):
                return np.array([r * 2 for r in self.rows_of_table])
        """
        assert "PF001" not in codes(src)

    def test_suppression_comment_silences(self):
        src = """
            import numpy as np
            def remaining(self):
                return np.array([s.remaining for s in self.sensors])  # reprolint: disable=PF001
        """
        assert "PF001" not in codes(src)


# ----------------------------------------------------------------------
# PF002 — alloc-in-hot-loop
# ----------------------------------------------------------------------
class TestPF002:
    def test_fires_on_alloc_inside_loop(self):
        src = """
            import numpy as np
            def step(self):
                for uav in self.uavs:
                    buf = np.zeros(4)
        """
        assert "PF002" in codes(src)

    def test_silent_when_alloc_outside_loop(self):
        src = """
            import numpy as np
            def step(self):
                buf = np.zeros(4)
                for uav in self.uavs:
                    buf[:] = 0
        """
        assert "PF002" not in codes(src)

    def test_cold_function_exempt_with_real_hot_index(self, tmp_path):
        pkg = tmp_path / "pkg"
        pkg.mkdir()
        mod = pkg / "mod.py"
        mod.write_text(textwrap.dedent("""
            import numpy as np
            def run_training():
                hot_helper()
            def hot_helper():
                for i in range(3):
                    x = np.zeros(3)
            def cold_plotting():
                for i in range(3):
                    x = np.zeros(3)
        """))
        hot = build_hot_index(pkg)
        rules = build_pf_rules(hot)
        diags = lint_source(mod.read_text(), str(mod), rules=rules)
        lines = {d.line for d in diags if d.code == "PF002"}
        source_lines = mod.read_text().splitlines()
        flagged = {source_lines[line - 1].strip() for line in lines}
        assert flagged == {"x = np.zeros(3)"}
        # Only the hot helper's allocation (first occurrence) is flagged.
        assert len(lines) == 1
        assert min(lines) < source_lines.index("def cold_plotting():") + 1

    def test_no_duplicate_findings_for_nested_defs(self):
        src = """
            import numpy as np
            def outer(self):
                def inner():
                    for i in range(3):
                        x = np.zeros(3)
                return inner
        """
        assert codes(src).count("PF002") == 1


# ----------------------------------------------------------------------
# PF003 — python-elementwise-loop
# ----------------------------------------------------------------------
class TestPF003:
    def test_fires_on_element_indexing_by_loop_var(self):
        src = """
            import numpy as np
            def total(self):
                acc = np.zeros(8)
                out = np.zeros(8)
                for i in range(8):
                    out[i] = acc[i] * 2
        """
        assert "PF003" in codes(src)

    def test_silent_on_slice_access(self):
        src = """
            import numpy as np
            def minibatches(self, n):
                order = np.arange(n)
                for start in range(0, n, 4):
                    batch = order[start:start + 4]
        """
        assert "PF003" not in codes(src)

    def test_silent_on_column_slice(self):
        src = """
            import numpy as np
            def per_agent(self):
                rewards = np.zeros((8, 3))
                for agent in range(3):
                    col = rewards[:, agent]
        """
        assert "PF003" not in codes(src)

    def test_silent_without_ndarray_evidence(self):
        src = """
            def total(self, items):
                for i in range(len(items)):
                    items[i] += 1
        """
        assert "PF003" not in codes(src)


# ----------------------------------------------------------------------
# PF004 — quadratic-entity-scan
# ----------------------------------------------------------------------
class TestPF004:
    def test_fires_on_nested_entity_loops(self):
        src = """
            def pair_scan(self):
                for ugv in self.ugvs:
                    for uav in self.uavs:
                        check(ugv, uav)
        """
        assert "PF004" in codes(src)

    def test_fires_on_per_entity_distance_scan(self):
        src = """
            import numpy as np
            def collect(self):
                positions = self.sensor_positions
                for uav in self.uavs:
                    gaps = np.hypot(positions[:, 0] - uav.x, positions[:, 1] - uav.y)
        """
        assert "PF004" in codes(src)

    def test_fires_on_product_comprehension(self):
        src = """
            def pairs(self):
                return [(g, v) for g in self.ugvs for v in self.uavs]
        """
        assert "PF004" in codes(src)

    def test_silent_on_single_entity_loop(self):
        src = """
            def names(self):
                return [u.name for u in self.uavs]
        """
        assert "PF004" not in codes(src)

    def test_silent_in_lifecycle_methods(self):
        src = """
            class Env:
                def reset_state(self):
                    for u in self.ugvs:
                        for v in self.uavs:
                            v.dock(u)
        """
        assert "PF004" not in codes(src)


# ----------------------------------------------------------------------
# PF005 — dtype-promotion-copy
# ----------------------------------------------------------------------
class TestPF005:
    def test_fires_on_mixed_dtype_binop(self):
        src = """
            import numpy as np
            def mix(self):
                small = np.zeros(4, dtype=np.float32)
                big = np.zeros(4)
                return small + big
        """
        assert "PF005" in codes(src)

    def test_silent_when_dtypes_agree(self):
        src = """
            import numpy as np
            def same(self):
                a = np.zeros(4)
                b = np.ones(4)
                return a + b
        """
        assert "PF005" not in codes(src)

    def test_astype_reclassifies(self):
        src = """
            import numpy as np
            def promoted(self):
                small = np.zeros(4, dtype=np.float32)
                small = small.astype(np.float64)
                big = np.zeros(4)
                return small + big
        """
        assert "PF005" not in codes(src)


# ----------------------------------------------------------------------
# Framework integration
# ----------------------------------------------------------------------
class TestFramework:
    def test_rules_are_src_only(self):
        for rule in PF_RULES:
            assert rule.src_only

    def test_rule_codes_unique_and_named(self):
        seen = {r.code for r in PF_RULES}
        assert seen == {"PF001", "PF002", "PF003", "PF004", "PF005"}

    def test_test_files_exempt(self):
        src = """
            import numpy as np
            def helper(self):
                return np.array([s.remaining for s in self.sensors])
        """
        assert codes(src, path="tests/test_helper.py") == []
