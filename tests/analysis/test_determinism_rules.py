"""DT-rule corpus: each determinism rule fires on a known-bad snippet
and stays silent on the sanctioned alternative.

Mirrors ``test_lint_rules.py``: snippets are embedded strings with a
virtual path controlling the src/test/engine classification.
"""

from __future__ import annotations

import textwrap

from repro.analysis.determinism.rules import DT_RULES
from repro.analysis.lint import lint_source

SRC_PATH = "src/repro/demo/module.py"
TEST_PATH = "tests/demo/test_module.py"
ENGINE_PATH = "src/repro/nn/demo.py"


def codes(snippet: str, path: str = SRC_PATH) -> list[str]:
    return [d.code for d in lint_source(textwrap.dedent(snippet), path,
                                        rules=DT_RULES)]


# ----------------------------------------------------------------------
# DT001 global-rng
# ----------------------------------------------------------------------
def test_dt001_fires_on_global_stream_draws():
    bad = """
    import os
    import random
    import numpy as np

    def sample():
        a = np.random.rand(3)
        b = np.random.randint(0, 10)
        c = random.random()
        random.shuffle([1, 2])
        d = os.urandom(8)
        return a, b, c, d
    """
    assert codes(bad).count("DT001") == 5


def test_dt001_silent_on_injected_generators():
    good = """
    import numpy as np

    def sample(rng: np.random.Generator):
        fresh = np.random.default_rng(0)
        ss = np.random.SeedSequence(42)
        return rng.random(3), fresh.integers(0, 10), ss
    """
    assert codes(good) == []


def test_dt001_silent_outside_src():
    bad = """
    import numpy as np

    def sample():
        return np.random.rand(3)
    """
    assert codes(bad, TEST_PATH) == []


# ----------------------------------------------------------------------
# DT002 wall-clock-control-flow
# ----------------------------------------------------------------------
def test_dt002_fires_on_clock_branches_comparisons_and_seeds():
    bad = """
    import time
    import numpy as np
    from datetime import datetime

    def run(deadline):
        if time.time() > deadline:
            return None
        while datetime.now() < deadline:
            pass
        rng = np.random.default_rng(int(time.time_ns()))
        return rng
    """
    # branch + while-test (both are comparisons too, deduplicated) + seed
    assert codes(bad).count("DT002") == 3


def test_dt002_silent_on_telemetry_reads():
    good = """
    import time

    def run(metrics):
        t0 = time.perf_counter()
        started = time.time()
        do_work = started  # recorded, never branched on
        metrics["seconds"] = time.perf_counter() - t0
        return do_work
    """
    assert codes(good) == []


# ----------------------------------------------------------------------
# DT003 unordered-iteration
# ----------------------------------------------------------------------
def test_dt003_fires_on_set_iteration_listings_and_id_keys():
    bad = """
    import os

    def walk(groups, items):
        pending = {1, 2, 3}
        for x in pending:
            print(x)
        names = [n for n in os.listdir(".")]
        buckets = {}
        for item in items:
            buckets[id(item)] = item
        return names, buckets
    """
    # set iteration + listdir + id()-key
    assert codes(bad).count("DT003") == 3


def test_dt003_silent_when_sorted_and_on_engine_paths():
    good = """
    import os

    def walk():
        pending = {1, 2, 3}
        for x in sorted(pending):
            print(x)
        return sorted(os.listdir("."))
    """
    assert codes(good) == []
    bad = """
    def index(tensors):
        return {id(t): i for i, t in enumerate(tensors)}
    """
    assert codes(bad).count("DT003") == 1
    assert codes(bad, ENGINE_PATH) == []  # identity maps are the engine idiom


# ----------------------------------------------------------------------
# DT004 fork-unsafe-state
# ----------------------------------------------------------------------
def test_dt004_fires_on_module_state_mutation():
    bad = """
    _CACHE = {}
    _LOG = []

    def remember(key, value):
        _CACHE[key] = value
        _LOG.append(key)

    def reset():
        _CACHE.clear()
    """
    assert codes(bad).count("DT004") == 3


def test_dt004_fires_on_module_level_handles_and_rngs():
    bad = """
    import numpy as np

    _OUT = open("log.txt", "w")
    _RNG = np.random.default_rng(0)
    """
    assert codes(bad).count("DT004") == 2


def test_dt004_silent_on_constants_and_engine_paths():
    good = """
    _LIMITS = {"max": 10}

    def lookup(key):
        return _LIMITS[key]
    """
    assert codes(good) == []
    bad = """
    _CACHE = {}

    def remember(key, value):
        _CACHE[key] = value
    """
    assert codes(bad, ENGINE_PATH) == []


def test_dt004_fires_on_weakref_container_mutation():
    bad = """
    import weakref

    _REGISTRY = weakref.WeakSet()
    _BY_NAME = weakref.WeakValueDictionary()

    def register(obj):
        _REGISTRY.add(obj)
        _BY_NAME[obj.name] = obj
    """
    assert codes(bad).count("DT004") == 2


def test_dt004_exempts_at_fork_guarded_globals():
    # Bound-method hook: the cache is cleared on the child side of every
    # fork, so parent mutations cannot leak into a worker.
    guarded_method = """
    import os

    _CACHE = {}
    if hasattr(os, "register_at_fork"):
        os.register_at_fork(after_in_child=_CACHE.clear)

    def remember(key, value):
        _CACHE[key] = value
    """
    assert codes(guarded_method) == []

    # Function hook: every global the callback resets is guarded.
    guarded_fn = """
    import os
    import weakref

    _STEPS = weakref.WeakSet()

    def _clear_in_child():
        for step in list(_STEPS):
            step.plans.clear()

    os.register_at_fork(after_in_child=_clear_in_child)

    def register(step):
        _STEPS.add(step)
    """
    assert codes(guarded_fn) == []

    # A hook for one global does not launder the others.
    partial = """
    import os

    _CACHE = {}
    _LOG = []
    os.register_at_fork(after_in_child=_CACHE.clear)

    def remember(key, value):
        _CACHE[key] = value
        _LOG.append(key)
    """
    assert codes(partial).count("DT004") == 1


# ----------------------------------------------------------------------
# Suppression
# ----------------------------------------------------------------------
def test_inline_suppression_applies_to_dt_rules():
    src = """
    _CACHE = {}

    def remember(key, value):
        _CACHE[key] = value  # reprolint: disable=DT004
    """
    assert codes(src) == []
