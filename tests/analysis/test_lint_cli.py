"""The merged tree must lint clean, and the CLI entry points must work."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.lint import lint_paths, main as lint_main
from repro.cli import main as cli_main

REPO = Path(__file__).resolve().parents[2]


def test_src_lints_clean():
    diagnostics = lint_paths([str(REPO / "src")])
    assert diagnostics == [], "\n".join(d.format() for d in diagnostics)


def test_tests_and_benchmarks_lint_clean():
    diagnostics = lint_paths([str(REPO / "tests"), str(REPO / "benchmarks")])
    assert diagnostics == [], "\n".join(d.format() for d in diagnostics)


def test_reprolint_main_exit_codes(tmp_path, capsys):
    assert lint_main([str(REPO / "src")]) == 0

    bad = tmp_path / "src" / "mod.py"
    bad.parent.mkdir()
    bad.write_text("def update(optimizer, loss):\n"
                   "    loss.backward()\n"
                   "    optimizer.step()\n")
    assert lint_main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "RL007" in out and "mod.py:1" in out

    assert lint_main([str(tmp_path / "missing")]) == 2


def test_cli_lint_subcommand(capsys):
    assert cli_main(["lint", str(REPO / "src")]) == 0
    assert cli_main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RL001", "RL004", "RL008"):
        assert code in out
