"""Rule-by-rule corpus: each rule fires on a known-bad snippet and stays
silent on a known-good one.

Snippets are embedded strings (not real files) so the repo-wide lint run
never sees them; ``lint_source`` takes a virtual path that controls the
src/test classification.
"""

from __future__ import annotations

import textwrap

from repro.analysis.lint import lint_source

SRC_PATH = "src/repro/demo/module.py"
TEST_PATH = "tests/demo/test_module.py"


def codes(snippet: str, path: str = SRC_PATH) -> list[str]:
    return [d.code for d in lint_source(textwrap.dedent(snippet), path)]


# ----------------------------------------------------------------------
# RL001 tensor-state-mutation
# ----------------------------------------------------------------------
def test_rl001_fires_on_data_mutation():
    bad = """
    def tweak(param):
        param.data = param.data * 2
        param.grad[0] = 0.0
        param.data[-1] += 1.0
    """
    assert codes(bad).count("RL001") == 3


def test_rl001_silent_on_engine_paths_and_good_code():
    bad = """
    def tweak(param):
        param.data = param.data * 2
    """
    assert codes(bad, "src/repro/nn/optim.py") == []
    good = """
    def tweak(param, optimizer):
        optimizer.step()
        value = param.data.copy()
    """
    assert codes(good) == []


# ----------------------------------------------------------------------
# RL002 raw-numpy-on-tensor
# ----------------------------------------------------------------------
def test_rl002_fires_on_np_math_over_tensor():
    bad = """
    import numpy as np
    from repro.nn import Tensor

    def forward(x):
        h = Tensor(x)
        return np.exp(h)
    """
    assert "RL002" in codes(bad)


def test_rl002_tracks_annotations_and_reassignment():
    bad = """
    import numpy as np

    def forward(x: "Tensor"):
        return np.tanh(x)
    """
    assert "RL002" in codes(bad)
    good = """
    import numpy as np

    def forward(x: "Tensor"):
        x = x.numpy()
        return np.tanh(x)
    """
    assert codes(good) == []


def test_rl002_silent_on_tensor_methods():
    good = """
    from repro.nn import Tensor

    def forward(x):
        h = Tensor(x)
        return h.exp().log()
    """
    assert codes(good) == []


# ----------------------------------------------------------------------
# RL003 missing-no-grad
# ----------------------------------------------------------------------
def test_rl003_fires_on_rollout_without_no_grad():
    bad = """
    def evaluate_policy(policy, observations):
        out = policy(observations)
        return out.values.numpy()
    """
    assert "RL003" in codes(bad)


def test_rl003_silent_with_no_grad_or_training():
    good = """
    from repro.nn import no_grad

    def evaluate_policy(policy, observations):
        with no_grad():
            out = policy(observations)
        return out.values.numpy()
    """
    assert codes(good) == []
    training = """
    def act_and_learn(policy, observations, loss):
        out = policy(observations)
        loss.backward()
        return out
    """
    assert codes(training) == []


# ----------------------------------------------------------------------
# RL004 float32-drift
# ----------------------------------------------------------------------
def test_rl004_fires_on_reduced_precision():
    bad = """
    import numpy as np

    def make(x):
        a = np.zeros(3, dtype=np.float32)
        b = x.astype("float32")
        return a, b
    """
    assert codes(bad).count("RL004") == 2


def test_rl004_silent_on_float64():
    good = """
    import numpy as np

    def make(x):
        return np.zeros(3, dtype=np.float64)
    """
    assert codes(good) == []


# ----------------------------------------------------------------------
# RL005 backward-loop-capture (applies to tests too)
# ----------------------------------------------------------------------
def test_rl005_fires_on_loop_variable_capture():
    bad = """
    def build(tensors, out):
        for t in tensors:
            def _backward():
                t._accumulate(out.grad)
            out._backward = _backward
    """
    assert "RL005" in codes(bad)
    assert "RL005" in codes(bad, TEST_PATH)


def test_rl005_silent_when_bound_by_default_arg():
    good = """
    def build(tensors, out):
        for t in tensors:
            def _backward(t=t):
                t._accumulate(out.grad)
            out._backward = _backward
    """
    assert codes(good) == []


# ----------------------------------------------------------------------
# RL006 bare-assert
# ----------------------------------------------------------------------
def test_rl006_fires_in_src_but_not_tests():
    bad = """
    def collect(metrics):
        assert metrics is not None
        return metrics
    """
    assert "RL006" in codes(bad)
    assert codes(bad, TEST_PATH) == []


def test_rl006_silent_on_explicit_raise():
    good = """
    def collect(metrics):
        if metrics is None:
            raise RuntimeError("no metrics")
        return metrics
    """
    assert codes(good) == []


# ----------------------------------------------------------------------
# RL007 missing-zero-grad
# ----------------------------------------------------------------------
def test_rl007_fires_on_step_without_zero_grad():
    bad = """
    def update(optimizer, loss):
        loss.backward()
        optimizer.step()
    """
    assert "RL007" in codes(bad)


def test_rl007_silent_with_zero_grad_or_env_step():
    good = """
    def update(optimizer, loss):
        optimizer.zero_grad()
        loss.backward()
        optimizer.step()
    """
    assert codes(good) == []
    env_only = """
    def rollout_env(env, loss):
        loss.backward()
        env.step()
    """
    assert "RL007" not in codes(env_only)


# ----------------------------------------------------------------------
# RL008 unguarded-reciprocal
# ----------------------------------------------------------------------
def test_rl008_fires_on_bare_reciprocal():
    bad = """
    def weights(distances):
        return 1.0 / distances
    """
    assert "RL008" in codes(bad)


def test_rl008_silent_with_epsilon_guard():
    good = """
    import numpy as np

    def weights(distances):
        inv = 1.0 / (distances + 1e-6)
        safe = 1.0 / np.maximum(distances, 1e-12)
        return inv, safe
    """
    assert codes(good) == []


# ----------------------------------------------------------------------
# RL009 tensor-attr-tape-leak
# ----------------------------------------------------------------------
def test_rl009_fires_on_graph_attached_state():
    bad = """
    from repro.nn import Module

    class Recurrent(Module):
        def forward(self, x):
            h = self.cell(x)
            self.hidden = h
            self.cache = self.hidden + x
            return h
    """
    assert codes(bad).count("RL009") == 2


def test_rl009_silent_on_detached_or_lifecycle_stores():
    good = """
    import numpy as np
    from repro.nn import Module, Tensor

    class Recurrent(Module):
        def __init__(self):
            super().__init__()
            self.hidden = None

        def reset(self):
            self.hidden = self.cell.init_state()

        def forward(self, x):
            h = self.cell(x)
            self.hidden = Tensor(h.numpy().copy())
            self.count = 3
            return h
    """
    assert codes(good) == []


def test_rl009_only_applies_to_modules_in_src():
    non_module = """
    class Buffer:
        def forward(self, x):
            self.last = self.cell(x)
            return self.last
    """
    assert codes(non_module) == []
    in_test = """
    from repro.nn import Module

    class Recurrent(Module):
        def forward(self, x):
            self.hidden = self.cell(x)
            return self.hidden
    """
    assert codes(in_test, TEST_PATH) == []


# ----------------------------------------------------------------------
# Suppression + infrastructure
# ----------------------------------------------------------------------
def test_inline_suppression_by_code_and_bare():
    by_code = """
    def tweak(param):
        param.data = 0.0  # reprolint: disable=RL001
    """
    assert codes(by_code) == []
    bare = """
    def tweak(param):
        param.data = 0.0  # reprolint: disable
    """
    assert codes(bare) == []
    wrong_code = """
    def tweak(param):
        param.data = 0.0  # reprolint: disable=RL008
    """
    assert "RL001" in codes(wrong_code)


def test_syntax_error_reports_rl000():
    assert codes("def broken(:\n    pass") == ["RL000"]


def test_diagnostic_format_is_clickable():
    diags = lint_source("def f(p):\n    p.data = 1\n", SRC_PATH)
    assert len(diags) == 1
    text = diags[0].format()
    assert text.startswith(f"{SRC_PATH}:2:")
    assert "RL001" in text and "[tensor-state-mutation]" in text
