"""Golden-IR snapshots for GARL's traced step.

The traced graph of one surrogate step (forward + loss + backward) on the
kaist smoke map is deterministic given the seed, so its op histogram and
key shapes act as a structural regression net: an accidental extra op,
lost communication round, or shape change shows up as a diff here before
it shows up as a training regression.

If a legitimate architecture change lands, regenerate with::

    PYTHONPATH=src python - <<'PY'
    from repro.analysis.graphcheck.runner import check_method
    r = check_method("garl", num_ugvs=3, num_uavs_per_ugv=1, include_cse=False)
    print(r.irs["ugv"].ops()); print(r.irs["uav"].ops())
    PY
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.analysis.graphcheck.runner import check_method

NUM_STOPS = 38  # kaist at smoke scale

GOLDEN_UGV_OPS = {
    "add": 71, "concat": 10, "exp": 1, "expand_dims": 15, "getitem": 36,
    "log_softmax": 1, "matmul": 83, "minimum": 3, "mul": 37, "neg": 13,
    "pow": 6, "reshape": 9, "softmax": 12, "squeeze": 7, "stack": 11,
    "sum": 26, "tanh": 20, "transpose": 2, "truediv": 22,
}

GOLDEN_UAV_OPS = {
    "add": 10, "concat": 1, "conv2d": 2, "exp": 1, "matmul": 3, "mul": 4,
    "neg": 3, "relu": 2, "reshape": 1, "squeeze": 1, "sum": 5, "tanh": 2,
}


@pytest.fixture(scope="module")
def garl_report():
    return check_method("garl", campus="kaist", preset="smoke",
                        num_ugvs=3, num_uavs_per_ugv=1, seed=0,
                        include_cse=False)


def test_garl_passes_are_clean(garl_report):
    assert garl_report.errors == []


def test_ugv_op_histogram_matches_golden(garl_report):
    assert garl_report.irs["ugv"].ops() == GOLDEN_UGV_OPS


def test_uav_op_histogram_matches_golden(garl_report):
    assert garl_report.irs["uav"].ops() == GOLDEN_UAV_OPS


def test_ugv_phase_split(garl_report):
    # Forward dominates; the surrogate loss adds a small scalar tail.
    phases = Counter(n.phase for n in garl_report.irs["ugv"] if not n.is_leaf)
    assert phases == {"forward": 376, "loss": 9}


def test_mcgcn_attention_nodes(garl_report):
    # 3 UGVs x 3 MC-GCN layers, each a (B,) stop distribution.
    att = garl_report.irs["ugv"].find(label="MCGCN.attention")
    assert len(att) == 9
    assert {n.shape for n in att} == {(NUM_STOPS,)}
    assert {n.op for n in att} == {"softmax"}


def test_ecomm_alpha_nodes(garl_report):
    # One (U, U) communication-weight matrix per E-Comm round.
    alpha = garl_report.irs["ugv"].find(label="EComm.alpha")
    assert len(alpha) == 3
    assert {n.shape for n in alpha} == {(3, 3)}


def test_every_parameter_received_a_gradient(garl_report):
    for part in ("ugv", "uav"):
        ir = garl_report.irs[part]
        params = [n for n in ir if n.is_param]
        assert params, part
        assert all(n.has_grad for n in params), part


def test_uav_trace_is_batch_polymorphic(garl_report):
    # The UAV IR was traced at batch 4; the shape pass verified the batch
    # symbol flows root-to-loss, so the loss root must be batch-free.
    ir = garl_report.irs["uav"]
    root = ir.node(ir.roots[0])
    assert root.shape == () and root.phase == "loss"
