"""Driver, golden-artifact, ranking and baseline-gate tests for perfcheck.

The golden half runs the real GARL smoke trace once (module-scoped) and
pins the artifact's shape plus the ISSUE's acceptance numbers: at least
three fusion groups and a peak-live-bytes strictly below the
sum-of-allocations on every traced graph.

Regenerate the golden expectations with::

    PYTHONPATH=src python -m repro perfcheck src --campus kaist \
        --preset smoke --ugvs 3 --uavs 1 --seed 0 --json /tmp/pc.json
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis.check import run_all
from repro.analysis.lint import Diagnostic
from repro.analysis.perfcheck import (
    PerfcheckReport,
    check_baseline,
    load_profile,
    main,
    run_perfcheck,
    write_baseline,
)

TRACE_NAMES = {"garl.ugv", "garl.ugv_vec", "garl.uav"}


@pytest.fixture(scope="module")
def garl_report() -> PerfcheckReport:
    return run_perfcheck(paths=["src"], methods=("garl",), campus="kaist",
                         preset="smoke", num_ugvs=3, num_uavs_per_ugv=1,
                         seed=0)


class TestGoldenTrace:
    def test_traces_cover_all_policy_graphs(self, garl_report):
        assert {t.name for t in garl_report.traces} == TRACE_NAMES

    def test_tree_is_perfcheck_clean(self, garl_report):
        assert garl_report.findings == []
        assert len(garl_report.suppressions) > 0

    def test_fusion_acceptance_floor(self, garl_report):
        # ISSUE acceptance: >= 3 fusion groups on the real trace.
        for trace in garl_report.traces:
            assert len(trace.fusion.groups) >= 3, trace.name
            for group in trace.fusion.groups:
                assert len(group.nodes) >= 2
                assert group.saved_bytes > 0

    def test_arena_acceptance_invariant(self, garl_report):
        # Peak live bytes strictly below the sum of allocations, and the
        # arena never needs more than it would per-op.
        for trace in garl_report.traces:
            arena = trace.arena
            assert arena.peak_live_bytes < arena.total_alloc_bytes, trace.name
            assert arena.peak_live_bytes <= arena.arena_bytes
            assert arena.arena_bytes < arena.total_alloc_bytes

    def test_artifact_schema(self, garl_report):
        payload = json.loads(garl_report.to_json())
        assert payload["schema"] == "repro.perfcheck/1"
        assert set(payload["summary"]) == {"findings", "suppressions",
                                           "fusion_groups",
                                           "fusion_saved_bytes", "traces"}
        assert payload["summary"]["findings"] == 0
        assert payload["summary"]["fusion_groups"] >= 9
        assert set(payload["traces"]) == TRACE_NAMES
        for trace in payload["traces"].values():
            assert trace["fusion_plan"]["version"] == 1
            assert trace["arena_plan"]["version"] == 1

    def test_dot_rendered_per_trace(self, garl_report):
        for trace in garl_report.traces:
            assert trace.dot.startswith("digraph fusion")
            assert "cluster_0" in trace.dot


class TestProfileRanking:
    def _report(self) -> PerfcheckReport:
        return PerfcheckReport(findings=[
            Diagnostic("src/repro/maps/roads.py", 10, 0, "PF001",
                       "per-step-array-rebuild", "cold finding"),
            Diagnostic("src/repro/env/airground.py", 20, 0, "PF002",
                       "alloc-in-hot-loop", "hot finding"),
        ])

    def test_without_profile_order_is_stable(self):
        report = self._report()
        report.rank()
        assert [d.path for d in report.findings] == [
            "src/repro/maps/roads.py", "src/repro/env/airground.py"]
        assert report.attributed == {0: 0.0, 1: 0.0}

    def test_profile_reorders_findings(self, tmp_path):
        profile = tmp_path / "run.jsonl"
        profile.write_text(textwrap.dedent("""\
            {"kind": "meta", "wall_seconds": 2.0}
            {"kind": "op", "op": "mul", "label": "", "module": "env.airground", "seconds": 0.5, "calls": 10}
        """))
        report = self._report()
        report.profile = load_profile(profile)
        report.rank()
        # The measured-hot env finding now leads.
        assert [d.path for d in report.findings] == [
            "src/repro/env/airground.py", "src/repro/maps/roads.py"]
        assert report.attributed[0] == pytest.approx(0.5)
        assert report.attributed[1] == 0.0
        assert "profile-ranked" in report.format_report()


class TestBaselineGate:
    def _report(self) -> PerfcheckReport:
        return PerfcheckReport(
            findings=[Diagnostic("src/repro/x.py", 5, 0, "PF003",
                                 "python-elementwise-loop", "m")],
            suppressions=[{"path": "src/repro/y.py", "line": 9,
                           "codes": ["PF001"]}])

    def test_round_trip_is_clean(self, tmp_path):
        report = self._report()
        baseline = tmp_path / "baseline.json"
        write_baseline(report, str(baseline))
        assert check_baseline(report, str(baseline)) == []

    def test_new_finding_is_a_regression(self, tmp_path):
        report = self._report()
        baseline = tmp_path / "baseline.json"
        write_baseline(report, str(baseline))
        report.findings.append(Diagnostic("src/repro/z.py", 1, 0, "PF004",
                                          "quadratic-entity-scan", "m"))
        problems = check_baseline(report, str(baseline))
        assert len(problems) == 1
        assert "PF004 src/repro/z.py" in problems[0]

    def test_new_suppression_is_a_regression(self, tmp_path):
        report = self._report()
        baseline = tmp_path / "baseline.json"
        write_baseline(report, str(baseline))
        report.suppressions.append({"path": "src/repro/y.py", "line": 30,
                                    "codes": ["PF001"]})
        problems = check_baseline(report, str(baseline))
        assert len(problems) == 1
        assert problems[0].startswith("new suppression: PF001")

    def test_wrong_schema_rejected(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "something-else"}')
        with pytest.raises(ValueError):
            check_baseline(self._report(), str(bad))


class TestCLI:
    def test_exit_one_on_unsuppressed_finding(self, tmp_path, capsys):
        mod = tmp_path / "hotmod.py"
        mod.write_text(textwrap.dedent("""
            import numpy as np
            def remaining(self):
                return np.array([s.remaining for s in self.sensors])
        """))
        assert main(["--static-only", str(mod)]) == 1
        assert "PF001" in capsys.readouterr().out

    def test_exit_zero_when_suppressed(self, tmp_path, capsys):
        mod = tmp_path / "hotmod.py"
        mod.write_text(textwrap.dedent("""
            import numpy as np
            def remaining(self):
                return np.array([s.remaining for s in self.sensors])  # reprolint: disable=PF001
        """))
        assert main(["--static-only", str(mod)]) == 0
        out = capsys.readouterr().out
        assert "0 active, 1 suppressed" in out

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("PF001", "PF002", "PF003", "PF004", "PF005"):
            assert code in out

    def test_repro_cli_dispatch(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["perfcheck", "--list-rules"]) == 0
        assert "PF001" in capsys.readouterr().out


class TestCheckMeta:
    def test_only_lint_pillar(self):
        results = run_all(only=["lint"])
        assert [r.name for r in results] == ["lint"]
        assert results[0].exit_code == 0
        assert results[0].status == "ok"
        assert results[0].seconds >= 0.0

    def test_repro_cli_check_dispatch(self, capsys):
        from repro.cli import main as repro_main

        assert repro_main(["check", "--only", "lint"]) == 0
        out = capsys.readouterr().out
        assert "lint" in out
        assert "1/1 pillars clean" in out
