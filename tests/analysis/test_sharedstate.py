"""Whole-program shared-state pass over a synthetic mini package."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis.determinism.sharedstate import (
    build_shared_state_map,
)

PACKAGE = {
    "cache.py": """
        _CAMPUS = {}
        _LIMIT = 10  # never rebound: plain constant, not shared state

        def get(name):
            if name not in _CAMPUS:
                _CAMPUS[name] = name.upper()
            return _CAMPUS[name]
    """,
    "active.py": """
        _ACTIVE = None

        def activate(thing):
            global _ACTIVE
            _ACTIVE = thing
    """,
    "streams.py": """
        import numpy as np

        _RNG = np.random.default_rng(0)
    """,
    "train.py": """
        from .cache import get

        def run_training():
            return helper()

        def helper():
            return get("kaist")
    """,
    "workers.py": """
        import os

        _PLANS = {}
        os.register_at_fork(after_in_child=_PLANS.clear)

        def _worker_main(conn):
            serve(conn)

        def serve(conn):
            _PLANS["warm"] = True
            activate(conn)
    """,
}


@pytest.fixture()
def mini_root(tmp_path):
    pkg = tmp_path / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("")
    for name, src in PACKAGE.items():
        (pkg / name).write_text(textwrap.dedent(src))
    return pkg


def test_map_finds_written_and_rebound_and_rng_sites(mini_root):
    m = build_shared_state_map(mini_root)
    by_name = {s.qualified: s for s in m.sites}
    assert set(by_name) == {"cache._CAMPUS", "active._ACTIVE", "streams._RNG",
                            "workers._PLANS"}
    assert by_name["cache._CAMPUS"].value_type == "dict"
    assert by_name["active._ACTIVE"].value_type == "rebound"
    assert by_name["streams._RNG"].kind == "rng"
    # _LIMIT has no writers and is immutable -> configuration, not a site.


def test_hot_reflects_reachability_from_entrypoints(mini_root):
    m = build_shared_state_map(mini_root)
    by_name = {s.qualified: s for s in m.sites}
    # get() is reached via run_training -> helper -> get.
    assert by_name["cache._CAMPUS"].hot
    # activate() is defined but never called on the training path.
    assert not by_name["active._ACTIVE"].hot
    assert any(q.endswith(".helper") for q in m.reachable_functions)


def test_writers_record_function_and_site(mini_root):
    m = build_shared_state_map(mini_root)
    campus = next(s for s in m.sites if s.name == "_CAMPUS")
    fns = {w.function.rsplit(".", 1)[-1] for w in campus.writers}
    assert fns == {"get"}
    assert all("cache.py" in w.site for w in campus.writers)


def test_json_and_dot_artifacts(mini_root):
    m = build_shared_state_map(mini_root)
    doc = json.loads(m.to_json())
    assert doc["schema"] == "repro.sharedstate/1"
    assert doc["summary"]["sites"] == 4
    assert doc["summary"]["hot_sites"] == 1
    assert doc["summary"]["fork_guarded_sites"] == 1
    assert doc["summary"]["worker_reachable_sites"] == 2
    assert doc["worker_entrypoints"] == ["_worker_main"]
    hot = [s for s in doc["sites"] if s["hot"]]
    assert [s["name"] for s in hot] == ["_CAMPUS"]
    dot = m.to_dot()
    assert "digraph sharedstate" in dot
    assert "cache._CAMPUS" in dot and "color=red" in dot

    summary = m.format_summary()
    assert "4 site(s), 1 written on the training path" in summary
    assert "HOT cache._CAMPUS" in summary


def test_worker_reachability_and_fork_guards(mini_root):
    m = build_shared_state_map(mini_root)
    by_name = {s.qualified: s for s in m.sites}
    # _PLANS: written from serve(), reached via _worker_main -> serve.
    plans = by_name["workers._PLANS"]
    assert plans.worker_reachable
    assert not plans.hot  # never written on the training path
    assert plans.fork_guarded  # os.register_at_fork(_PLANS.clear)
    # serve() also calls activate(), so _ACTIVE is worker-writable too —
    # and has no at-fork guard.
    active = by_name["active._ACTIVE"]
    assert active.worker_reachable
    assert not active.fork_guarded
    # The campus cache is hot but nothing on the worker path writes it.
    assert not by_name["cache._CAMPUS"].worker_reachable
    # Contested-state report: hot sites minus guarded ones.  _CAMPUS is
    # hot and unguarded in the mini package, so it is the one residue.
    assert [s.qualified for s in m.fork_boundary_sites] == ["cache._CAMPUS"]
    assert any(q.endswith(".serve") for q in m.worker_reachable_functions)


def test_repo_map_lists_campus_cache_as_hot():
    """The real tree: the campus cache is the one hot site today, and the
    scalar singletons (tracer/profiler actives) appear as rebound state."""
    import repro
    from pathlib import Path

    m = build_shared_state_map(Path(repro.__file__).parent)
    names = {s.qualified for s in m.sites}
    assert "experiments.runner._CAMPUS_CACHE" in names
    assert {s.qualified for s in m.hot_sites} == {
        "experiments.runner._CAMPUS_CACHE"}
    rebound = {s.qualified for s in m.sites if s.value_type == "rebound"}
    assert "nn.tracer._ACTIVE" in rebound
    assert "obs.scope._ACTIVE" in rebound


def test_repo_fork_boundary_is_fully_guarded():
    """Every hot site in the real tree carries an at-fork guard, so a
    rollout worker can never inherit live parent state; the compiled-plan
    registry and the worker-reachable cache clear are both audited."""
    import repro
    from pathlib import Path

    m = build_shared_state_map(Path(repro.__file__).parent)
    assert m.fork_boundary_sites == []
    by_name = {s.qualified: s for s in m.sites}
    assert by_name["nn.compile._COMPILED_STEPS"].fork_guarded
    assert by_name["experiments.runner._CAMPUS_CACHE"].fork_guarded
    # The worker bootstrap reaches the campus-cache clear.
    assert by_name["experiments.runner._CAMPUS_CACHE"].worker_reachable
