"""IR construction: tape -> GraphIR with full edges, params, serialisers."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.graphcheck import build_ir
from repro.nn import Linear, Module, Tensor, trace


class TwoLayer(Module):
    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.first = Linear(3, 4, rng=rng)
        self.second = Linear(4, 1, rng=rng)

    def forward(self, x):
        return self.second(self.first(x).tanh())


@pytest.fixture()
def traced():
    model = TwoLayer()
    with trace() as tape:
        tape.set_phase("forward")
        out = model(Tensor(np.ones((2, 3))))
        tape.set_phase("loss")
        loss = out.sum()
        loss.backward()
    ir = build_ir(tape, roots=[loss], params=dict(model.named_parameters()))
    return model, ir, loss


def test_nodes_are_topologically_ordered(traced):
    _, ir, _ = traced
    for node in ir:
        assert all(src < node.id for src in node.inputs)


def test_every_edge_resolves_and_leaves_exist(traced):
    _, ir, _ = traced
    ids = {n.id for n in ir}
    for node in ir:
        assert set(node.inputs) <= ids
    assert any(n.is_leaf and not n.is_param for n in ir)  # the input x


def test_params_tagged_with_module_paths(traced):
    model, ir, _ = traced
    tagged = {n.param_path for n in ir if n.is_param}
    assert tagged == set(dict(model.named_parameters()))
    # Params fed the matmuls, so they are leaves with consumers.
    consumers = ir.consumers()
    weight = next(n for n in ir if n.param_path == "first.weight")
    assert consumers[weight.id]


def test_root_is_the_loss_and_grad_reachability(traced):
    model, ir, loss = traced
    root = ir.node(ir.roots[0])
    assert root.op == "sum" and root.shape == ()
    reachable = ir.grad_reachable()
    for node in ir:
        if node.is_param:
            assert node.id in reachable


def test_phases_and_sites_recorded(traced):
    _, ir, _ = traced
    phases = {n.phase for n in ir if not n.is_leaf}
    assert phases == {"forward", "loss"}
    sites = [n.site for n in ir if not n.is_leaf]
    # Creation sites attribute to user code, not engine internals.
    assert all("tensor.py" not in s and "functional.py" not in s for s in sites)
    assert any("test_graphcheck_ir.py" in s for s in sites)


def test_ops_histogram_counts_non_leaves(traced):
    _, ir, _ = traced
    ops = ir.ops()
    assert ops["matmul"] == 2
    assert ops["tanh"] == 1
    assert "leaf" not in ops and "param" not in ops


def test_find_by_op_and_label():
    with trace() as tape:
        x = Tensor(np.zeros((2, 3)))
        y = x.softmax(axis=-1)
        tape.label(y, "demo.weights")
    ir = build_ir(tape, roots=[y])
    assert [n.id for n in ir.find(op="softmax")] == [n.id for n in ir.find(label="demo")]


def test_json_round_trips_and_drops_data(traced):
    _, ir, _ = traced
    payload = json.loads(ir.to_json())
    assert len(payload["nodes"]) == len(ir)
    assert payload["roots"] == list(ir.roots)
    assert "data" not in payload["nodes"][0]
    node = next(d for d in payload["nodes"] if d["param_path"] == "second.weight")
    assert node["shape"] == [4, 1]


def test_dot_emits_every_node_and_edge(traced):
    _, ir, _ = traced
    dot = ir.to_dot()
    assert dot.startswith("digraph")
    for node in ir:
        assert f"n{node.id} [" in dot
        for src in node.inputs:
            assert f"n{src} -> n{node.id};" in dot


def test_unused_params_still_get_nodes():
    model = TwoLayer()
    with trace() as tape:
        loss = model.first(Tensor(np.ones((1, 3)))).sum()
    ir = build_ir(tape, roots=[loss], params=dict(model.named_parameters()))
    second = [n for n in ir if n.param_path.startswith("second.")]
    assert len(second) == 2 and all(not ir.consumers()[n.id] for n in second)


def test_trace_keeps_constant_subgraphs():
    # _prev is pruned for no-grad children; the tape must not be.
    with trace() as tape:
        a = Tensor(np.ones(3))            # requires_grad False
        b = (a * 2.0).softmax(axis=-1)
    ir = build_ir(tape, roots=[b])
    soft = ir.find(op="softmax")[0]
    assert soft.inputs and not soft.requires_grad
