"""Pass-by-pass corpus: each GC check fires on a seeded defect and stays
silent on the healthy equivalent, mirroring the reprolint rule tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.graphcheck import (
    GraphIR,
    IRNode,
    build_ir,
    check_common_subexpressions,
    check_detached_params,
    check_shapes,
    check_softmax_invariants,
    check_tape_growth,
    run_all_passes,
)
from repro.analysis.graphcheck.runner import filter_suppressed
from repro.nn import Linear, Module, Parameter, Tensor, trace


def codes(diags):
    return [d.code for d in diags]


# ----------------------------------------------------------------------
# GC001 shape-check
# ----------------------------------------------------------------------
def test_gc001_fires_on_implicit_mutual_broadcast():
    # The (B,) + (B,1) footgun: silently builds a (B,B) intermediate.
    with trace() as tape:
        a = Tensor(np.zeros(4))
        b = Tensor(np.zeros((4, 1)))
        c = a + b
    ir = build_ir(tape, roots=[c])
    diags = check_shapes(ir)
    assert codes(diags) == ["GC001"]
    assert "expands both operands" in diags[0].message
    assert "test_graphcheck_passes.py" in diags[0].site  # file:line provenance


def test_gc001_silent_on_explicit_pairwise_expansion():
    # Same-rank explicit singletons (x[:,None] - x[None,:]) are deliberate.
    with trace() as tape:
        g = Tensor(np.zeros((4, 2)))
        r = g.expand_dims(1) - g.expand_dims(0)
    ir = build_ir(tape, roots=[r])
    assert check_shapes(ir) == []


def test_gc001_fires_on_reshape_absorbing_batch():
    with trace() as tape:
        x = Tensor(np.zeros((2, 6)))
        y = x.reshape(12)
    ir = build_ir(tape, roots=[y])
    diags = check_shapes(ir, batch_size=2)
    assert codes(diags) == ["GC001"]
    assert "not batch-polymorphic" in diags[0].message


def test_gc001_silent_on_batch_preserving_flatten():
    with trace() as tape:
        x = Tensor(np.zeros((2, 3, 4)))
        y = x.reshape(2, 12)
    ir = build_ir(tape, roots=[y])
    assert check_shapes(ir, batch_size=2) == []


def test_gc001_fires_on_matmul_contracting_batch():
    # Works at the traced batch size only because B happens to equal 2.
    with trace() as tape:
        x = Tensor(np.zeros((2, 3)))
        w = Parameter(np.zeros((2, 4)))
        y = x.transpose() @ w
    ir = build_ir(tape, roots=[y])
    diags = check_shapes(ir, batch_size=2)
    assert "GC001" in codes(diags)
    assert any("batch dimension" in d.message for d in diags)


def test_gc001_batch_polymorphic_model_is_clean():
    with trace() as tape:
        x = Tensor(np.zeros((5, 3)))
        w = Parameter(np.ones((3, 4)))
        y = ((x @ w).tanh() + Parameter(np.zeros(4))).sum(axis=-1)
    ir = build_ir(tape, roots=[y])
    assert check_shapes(ir, batch_size=5) == []


# ----------------------------------------------------------------------
# GC002 detached-parameter
# ----------------------------------------------------------------------
class SeededDetached(Module):
    """`dead` never contributes to the loss; `ranked` only via .numpy()."""

    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.used = Linear(4, 4, rng=rng)
        self.dead = Linear(4, 4, rng=rng)
        self.ranked = Linear(4, 1, rng=rng)

    def forward(self, x):
        order = np.argsort(self.ranked(x).squeeze(-1).numpy())
        return self.used(x).sum() + float(order[0]) * 0.0


def trace_module(model, x):
    model.zero_grad()
    with trace() as tape:
        loss = model(x)
        loss.backward()
    return build_ir(tape, roots=[loss], params=dict(model.named_parameters()))


def test_gc002_reports_detached_params_by_module_path():
    ir = trace_module(SeededDetached(), Tensor(np.ones((2, 4))))
    diags = check_detached_params(ir)
    flagged = {d.message.split("'")[1] for d in diags}
    assert flagged == {"dead.weight", "dead.bias", "ranked.weight", "ranked.bias"}
    by_param = {d.message.split("'")[1]: d.message for d in diags}
    assert "never used" in by_param["dead.weight"]
    assert "no gradient path" in by_param["ranked.weight"]


def test_gc002_silent_when_all_params_reach_loss():
    class Healthy(Module):
        def __init__(self):
            super().__init__()
            self.lin = Linear(4, 2, rng=np.random.default_rng(0))

        def forward(self, x):
            return self.lin(x).sum()

    ir = trace_module(Healthy(), Tensor(np.ones((2, 4))))
    assert check_detached_params(ir) == []


# ----------------------------------------------------------------------
# GC003 softmax-invariant
# ----------------------------------------------------------------------
def _softmax_ir(logits: np.ndarray, probs: np.ndarray) -> GraphIR:
    nodes = [
        IRNode(id=0, op="leaf", shape=logits.shape, dtype="float64",
               requires_grad=False, data=logits),
        IRNode(id=1, op="softmax", shape=probs.shape, dtype="float64",
               requires_grad=False, inputs=(0,), data=probs,
               label="demo.weights"),
    ]
    return GraphIR(nodes, roots=(1,))


def test_gc003_fires_on_rows_not_summing_to_one():
    logits = np.zeros((2, 3))
    probs = np.full((2, 3), 0.3)  # rows sum to 0.9
    diags = check_softmax_invariants(_softmax_ir(logits, probs))
    assert codes(diags) == ["GC003"]
    assert "do not sum to 1" in diags[0].message


def test_gc003_fires_on_probability_mass_behind_mask():
    logits = np.array([[0.0, -1e9], [0.0, 0.0]])
    probs = np.array([[0.6, 0.4], [0.5, 0.5]])  # rows normalised, mask leaks
    diags = check_softmax_invariants(_softmax_ir(logits, probs))
    assert codes(diags) == ["GC003"]
    assert "masked logit" in diags[0].message
    assert "demo.weights" in diags[0].message


def test_gc003_real_masked_softmax_is_clean():
    with trace() as tape:
        logits = Tensor(np.array([[1.0, -1e9, 0.5], [0.0, 0.0, -1e9]]))
        probs = logits.softmax(axis=-1)
        lp = logits.log_softmax(axis=-1)
    ir = build_ir(tape, roots=[probs, lp])
    assert check_softmax_invariants(ir) == []


# ----------------------------------------------------------------------
# GC004 tape-growth
# ----------------------------------------------------------------------
def test_gc004_fires_when_state_carries_the_tape():
    p = Parameter(np.ones(3))
    with trace() as t1:
        carried = p * 2.0
        loss1 = carried.sum()
        loss1.backward()
    with trace() as t2:
        loss2 = (carried * 3.0).sum()   # consumes step-1 graph: tape grows
        loss2.backward()
    ir1 = build_ir(t1, roots=[loss1])
    ir2 = build_ir(t2, roots=[loss2])
    diags = check_tape_growth(ir1, ir2)
    assert "GC004" in codes(diags)
    assert any("grows across steps" in d.message for d in diags)


def test_gc004_silent_for_congruent_detached_steps():
    p = Parameter(np.ones(3))

    def step(state):
        h = (p * Tensor(state)).sum()
        h.backward()
        return h

    with trace() as t1:
        l1 = step(np.ones(3))
    with trace() as t2:
        l2 = step(np.ones(3) * 2.0)  # detached carry: fresh leaf each step
    diags = check_tape_growth(build_ir(t1, roots=[l1]), build_ir(t2, roots=[l2]))
    assert diags == []


def test_gc004_reports_op_histogram_drift():
    p = Parameter(np.ones(3))
    with trace() as t1:
        l1 = (p * 2.0).sum()
    with trace() as t2:
        l2 = (p * 2.0).tanh().sum()   # extra op appears in step 2
    diags = check_tape_growth(build_ir(t1, roots=[l1]), build_ir(t2, roots=[l2]))
    assert codes(diags) == ["GC004"]
    assert "tanh: 0 -> 1" in diags[0].message


# ----------------------------------------------------------------------
# GC005 common-subexpression
# ----------------------------------------------------------------------
def test_gc005_reports_recomputed_subgraphs():
    m = np.arange(12.0).reshape(3, 4)
    w = Parameter(np.ones((4, 2)))
    with trace() as tape:
        first = Tensor(m) @ w       # identical constant re-wrapped twice,
        second = Tensor(m) @ w      # multiplied by the same parameter
        loss = (first + second).sum()
    ir = build_ir(tape, roots=[loss])
    diags = check_common_subexpressions(ir)
    assert codes(diags) == ["GC005"]
    assert all(d.severity == "info" for d in diags)
    assert "computed 2x" in diags[0].message


def test_gc005_silent_when_inputs_differ():
    w = Parameter(np.ones((4, 2)))
    with trace() as tape:
        a = Tensor(np.ones((3, 4))) @ w
        b = Tensor(np.zeros((3, 4))) @ w
        loss = (a + b).sum()
    ir = build_ir(tape, roots=[loss])
    assert check_common_subexpressions(ir) == []


# ----------------------------------------------------------------------
# Driver + suppression
# ----------------------------------------------------------------------
def test_run_all_passes_composes_the_catalogue():
    ir = trace_module(SeededDetached(), Tensor(np.ones((2, 4))))
    diags = run_all_passes(ir)
    assert "GC002" in codes(diags)


def test_suppression_filters_by_site_comment(tmp_path):
    source = tmp_path / "model.py"
    source.write_text(
        "ok = 1\n"
        "x = a + b  # graphcheck: disable=GC001\n"
        "y = c + d  # graphcheck: disable\n"
    )
    from repro.analysis.graphcheck.passes import GraphDiagnostic

    def diag(code, line):
        return GraphDiagnostic(code, "demo", "error", "msg",
                               site=f"{source}:{line} in forward")

    kept = filter_suppressed([
        diag("GC001", 1),   # no marker: kept
        diag("GC001", 2),   # matching code: dropped
        diag("GC002", 2),   # non-matching code: kept
        diag("GC003", 3),   # bare disable: dropped
    ])
    assert [(d.code, d.site) for d in kept] == [
        ("GC001", f"{source}:1 in forward"),
        ("GC002", f"{source}:2 in forward"),
    ]


def test_check_method_end_to_end_is_clean():
    from repro.analysis.graphcheck.runner import check_method

    report = check_method("gat", num_ugvs=2, num_uavs_per_ugv=1,
                          include_cse=False)
    assert not report.skipped
    assert report.errors == []
    assert set(report.irs) == {"ugv", "uav"}


def test_check_method_skips_parameter_free_agents():
    from repro.analysis.graphcheck.runner import check_method

    report = check_method("random", num_ugvs=2, num_uavs_per_ugv=1)
    assert report.skipped and report.diagnostics == []
