"""IR-pass tests for perfcheck on hand-built mini graphs.

The graphs are small enough to compute the expected fusion groups,
liveness peaks and value-number groups by hand, which pins down the
pass semantics independently of any traced method.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.graphcheck.ir import GraphIR, IRNode
from repro.analysis.perfcheck.passes import (
    analyze_buffers,
    find_cross_phase_recompute,
    find_fusion_groups,
)


def mk(node_id: int, op: str, inputs=(), shape=(4,), phase: str = "",
       value: float | None = None) -> IRNode:
    """Build one float64 IR node with deterministic data."""
    data = np.full(shape, float(node_id if value is None else value))
    return IRNode(node_id, op, tuple(shape), "float64",
                  requires_grad=True, site=f"src/mod.py:{10 + node_id}",
                  phase=phase, inputs=tuple(inputs), data=data)


def graph(nodes: list[IRNode]) -> GraphIR:
    return GraphIR(nodes, roots=(nodes[-1].id,))


# ----------------------------------------------------------------------
# PC001 — fusion groups
# ----------------------------------------------------------------------
class TestFusion:
    def test_single_consumer_chain_fuses(self):
        ir = graph([
            mk(0, "leaf"),
            mk(1, "exp", inputs=(0,)),
            mk(2, "relu", inputs=(1,)),
            mk(3, "tanh", inputs=(2,)),
        ])
        plan = find_fusion_groups(ir)
        assert len(plan.groups) == 1
        assert plan.groups[0].ops == ["exp", "relu", "tanh"]
        # Intermediates (all but the chain tail): two (4,) float64 buffers.
        assert plan.groups[0].saved_bytes == 2 * 4 * 8
        assert plan.saved_bytes == plan.groups[0].saved_bytes

    def test_non_elementwise_op_breaks_chain(self):
        ir = graph([
            mk(0, "leaf"),
            mk(1, "exp", inputs=(0,)),
            mk(2, "matmul", inputs=(1,)),
            mk(3, "relu", inputs=(2,)),
            mk(4, "tanh", inputs=(3,)),
        ])
        plan = find_fusion_groups(ir)
        # `exp` is stranded alone (dropped: below min_size); the chain
        # restarts after the matmul.
        assert [g.ops for g in plan.groups] == [["relu", "tanh"]]

    def test_multi_consumer_edge_blocks_fusion(self):
        ir = graph([
            mk(0, "leaf"),
            mk(1, "exp", inputs=(0,)),
            mk(2, "relu", inputs=(1,)),
            mk(3, "tanh", inputs=(1,)),
        ])
        plan = find_fusion_groups(ir)
        # `exp` has two consumers, so neither child may join it and every
        # candidate group is a singleton.
        assert plan.groups == []

    def test_dot_renders_clusters(self):
        ir = graph([
            mk(0, "leaf"),
            mk(1, "exp", inputs=(0,)),
            mk(2, "relu", inputs=(1,)),
        ])
        plan = find_fusion_groups(ir)
        dot = plan.to_dot(ir)
        assert dot.startswith("digraph fusion")
        assert "cluster_0" in dot
        assert "n1 -> n2" in dot


# ----------------------------------------------------------------------
# PC002 — buffer lifetime / arena
# ----------------------------------------------------------------------
class TestArena:
    def test_linear_chain_peak_and_reuse(self):
        # 5 same-size ops in a row: at most producer+consumer are live,
        # and two arena slots ping-pong the whole chain.
        nodes = [mk(0, "leaf", shape=(8,))]
        for i in range(1, 6):
            nodes.append(mk(i, "exp", inputs=(i - 1,), shape=(8,)))
        plan = analyze_buffers(graph(nodes))
        size = 8 * 8
        assert plan.total_alloc_bytes == 5 * size
        assert plan.peak_live_bytes == 2 * size
        assert plan.arena_bytes == 2 * size
        assert len(plan.slot_sizes) == 2

    def test_invariant_peak_le_arena_lt_total(self):
        # A less regular graph: a diamond with mixed sizes.
        ir = graph([
            mk(0, "leaf", shape=(16,)),
            mk(1, "exp", inputs=(0,), shape=(16,)),
            mk(2, "relu", inputs=(1,), shape=(16,)),
            mk(3, "tanh", inputs=(1,), shape=(4,)),
            mk(4, "add", inputs=(2, 3), shape=(16,)),
            mk(5, "sum", inputs=(4,), shape=()),
        ])
        plan = analyze_buffers(ir)
        assert plan.peak_live_bytes <= plan.arena_bytes < plan.total_alloc_bytes
        assert 0.0 < plan.reuse_ratio < 1.0

    def test_leaves_do_not_count(self):
        ir = graph([
            mk(0, "leaf", shape=(1000,)),
            mk(1, "exp", inputs=(0,), shape=(4,)),
            mk(2, "relu", inputs=(1,), shape=(4,)),
        ])
        plan = analyze_buffers(ir)
        # The big leaf is not the allocator's to reuse.
        assert plan.total_alloc_bytes == 2 * 4 * 8

    def test_as_dict_round_trip(self):
        ir = graph([
            mk(0, "leaf"),
            mk(1, "exp", inputs=(0,)),
            mk(2, "relu", inputs=(1,)),
        ])
        d = analyze_buffers(ir).as_dict()
        assert d["version"] == 1
        assert d["peak_live_bytes"] <= d["arena_bytes"]
        assert {a["node"] for a in d["assignments"]} == {1, 2}


# ----------------------------------------------------------------------
# PC003 — cross-phase recompute
# ----------------------------------------------------------------------
class TestRecompute:
    def test_detects_phase_spanning_duplicate(self):
        ir = graph([
            mk(0, "leaf", value=1.5),
            mk(1, "exp", inputs=(0,), phase="forward", value=2.5),
            mk(2, "exp", inputs=(0,), phase="loss", value=2.5),
        ])
        findings = find_cross_phase_recompute(ir)
        assert len(findings) == 1
        assert findings[0].op == "exp"
        assert findings[0].count == 2
        assert findings[0].phases == ["forward", "loss"]
        assert findings[0].bytes_each == 4 * 8

    def test_same_phase_duplicates_ignored(self):
        ir = graph([
            mk(0, "leaf", value=1.5),
            mk(1, "exp", inputs=(0,), phase="forward", value=2.5),
            mk(2, "exp", inputs=(0,), phase="forward", value=2.5),
        ])
        assert find_cross_phase_recompute(ir) == []

    def test_different_values_not_grouped(self):
        # Same op and inputs but different output data: not the same
        # value, so no recompute finding.
        ir = graph([
            mk(0, "leaf", value=1.5),
            mk(1, "exp", inputs=(0,), phase="forward", value=2.5),
            mk(2, "exp", inputs=(0,), phase="loss", value=9.0),
        ])
        assert find_cross_phase_recompute(ir) == []

    def test_deep_graph_terminates_quickly(self):
        # The value-number keys are interned, so a deep chain must not
        # blow up hashing (the pre-interning bug was exponential).
        nodes = [mk(0, "leaf")]
        for i in range(1, 400):
            nodes.append(mk(i, "exp", inputs=(i - 1,), phase="forward",
                            value=float(i)))
        assert find_cross_phase_recompute(graph(nodes)) == []
