"""Runtime divergence bisector: clean runs certify, injected
nondeterminism is localised to the iteration and the op."""

from __future__ import annotations

from types import SimpleNamespace

import numpy as np

from repro.analysis.determinism.bisector import (
    check_determinism,
    first_tape_divergence,
)
from repro.core.policies import UGVPolicyOutput
from repro.experiments.runner import build_agent


def _build(noisy: bool = False):
    agent = build_agent("garl", "kaist", "smoke", num_ugvs=2,
                        num_uavs_per_ugv=1, seed=0)
    if noisy:
        orig = agent.ugv_policy.forward

        def noisy_forward(*args, **kwargs):
            out = orig(*args, **kwargs)
            jitter = float(1.0 + 1e-3 * np.random.rand())  # the injected bug
            return UGVPolicyOutput(out.logits * jitter, out.values)

        agent.ugv_policy.forward = noisy_forward
    return agent


def test_identical_runs_certify_equal():
    report = check_determinism(iterations=2, num_ugvs=2, num_uavs_per_ugv=1,
                               agent_factory=_build, keep_history=True)
    assert report.equal
    assert report.first_divergent_iteration is None
    assert len(report.fingerprint_history) == 2
    for entry in report.fingerprint_history:
        assert entry["a"] == entry["b"]
    assert "OK" in report.format()


def test_injected_global_rng_is_caught_at_iteration_and_op():
    report = check_determinism(iterations=2, num_ugvs=2, num_uavs_per_ugv=1,
                               agent_factory=lambda: _build(noisy=True))
    assert not report.equal
    # Both lockstep runs draw from the shared global stream, so the very
    # first iteration diverges.
    assert report.first_divergent_iteration == 0
    assert report.divergent_components  # at least one component named
    # The rewind-replay names the op that consumed the random value: the
    # logits scaling in noisy_forward above.
    assert report.op == "mul"
    assert "test_bisector.py" in (report.site or "")
    assert report.op_note.startswith("value:")
    assert f"`{report.op}`" in report.format()


class _FakeTape:
    def __init__(self, ops, fingerprints):
        self.records = [SimpleNamespace(op=op, site=site) for op, site in ops]
        self.fingerprints = list(fingerprints)

    def __len__(self):
        return len(self.records)


def test_first_tape_divergence_value_structural_and_length():
    a = _FakeTape([("add", "x.py:1"), ("mul", "x.py:2")], ["aa", "bb"])
    assert first_tape_divergence(a, _FakeTape(
        [("add", "x.py:1"), ("mul", "x.py:2")], ["aa", "bb"])) is None

    idx, op, site, why = first_tape_divergence(a, _FakeTape(
        [("add", "x.py:1"), ("mul", "x.py:2")], ["aa", "zz"]))
    assert (idx, op, site) == (1, "mul", "x.py:2")
    assert why.startswith("value:")

    idx, op, _, why = first_tape_divergence(a, _FakeTape(
        [("add", "x.py:1"), ("sub", "x.py:9")], ["aa", "bb"]))
    assert (idx, op) == (1, "mul")
    assert why.startswith("structural:")

    idx, _, _, why = first_tape_divergence(a, _FakeTape(
        [("add", "x.py:1")], ["aa"]))
    assert idx == 1
    assert "different lengths" in why
