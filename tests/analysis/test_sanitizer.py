"""Runtime numerics sanitizer: provenance, NaN pinpointing, version checks."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.nn import (
    SGD,
    Adam,
    AnomalyError,
    InplaceMutationError,
    Linear,
    Tensor,
    annotate,
    detect_anomaly,
    enable_grad,
    is_anomaly_enabled,
    is_grad_enabled,
    no_grad,
)
from repro.nn.layers import Parameter


@pytest.fixture(autouse=True)
def _silence_numpy_warnings():
    # The tests below deliberately produce inf/nan; numpy's RuntimeWarnings
    # are the expected companions of the sanitizer's errors.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        yield


# ----------------------------------------------------------------------
# Forward checks + provenance
# ----------------------------------------------------------------------
def test_pinpoints_log_of_zeroed_softmax_row():
    """The E-Comm failure mode: log of a zeroed softmax row."""
    weights = Tensor(np.array([1.0, 2.0, 3.0]), requires_grad=True)
    with detect_anomaly():
        alpha = weights.softmax(axis=-1)
        zeroed = alpha * Tensor(np.zeros(3))  # degenerate neighbourhood
        with pytest.raises(AnomalyError) as excinfo:
            zeroed.log()
    message = str(excinfo.value)
    assert "'log'" in message                      # the culprit op
    assert "test_sanitizer.py" in message          # creation site
    assert "'mul'" in message                      # input provenance
    assert "(3,)" in message and "float64" in message


def test_forward_silent_when_disabled():
    x = Tensor(np.zeros(2), requires_grad=True)
    out = x.log()  # -inf, but no anomaly mode
    assert np.isneginf(out.data).all()
    assert out._anomaly is None  # zero bookkeeping when disabled


def test_backward_gradient_nan_is_pinned_to_op():
    x = Tensor(np.array([0.0]), requires_grad=True)
    with detect_anomaly():
        y = x ** 0.5  # d/dx sqrt at 0 -> inf
        with pytest.raises(AnomalyError) as excinfo:
            y.backward()
    assert "backward" in str(excinfo.value)
    assert "'pow'" in str(excinfo.value)


def test_annotate_labels_show_up_in_errors():
    x = Tensor(np.array([1.0, 1.0]), requires_grad=True)
    with detect_anomaly():
        alpha = annotate(x.softmax(-1), "EComm.alpha")
        bad = alpha - Tensor(np.array([0.5, 0.5]))
        with pytest.raises(AnomalyError) as excinfo:
            (bad * 0.0).log().backward(np.ones(2))
    assert "created at" in str(excinfo.value)


def test_annotate_is_identity_when_disabled():
    x = Tensor(np.full(3, np.nan))
    assert annotate(x, "whatever") is x  # no check, no raise, no rename
    assert x.name == ""


# ----------------------------------------------------------------------
# In-place mutation detection / version counter
# ----------------------------------------------------------------------
def test_inplace_mutation_between_forward_and_backward_raises():
    x = Tensor(np.array([1.0, 2.0]), requires_grad=True)
    with detect_anomaly():
        y = (x * x).sum()
        x.data *= 2.0  # silent corruption without the sanitizer
        with pytest.raises(InplaceMutationError) as excinfo:
            y.backward()
    assert "'mul'" in str(excinfo.value)


def test_optimizer_step_on_stale_graph_is_detected():
    p = Parameter(np.array([1.0, 2.0]))
    opt = SGD([p], lr=0.1)
    with detect_anomaly():
        loss = (p * p).sum()
        loss.backward()
        opt.step()  # bumps the version: graph is now stale
        p.zero_grad()
        with pytest.raises(InplaceMutationError) as excinfo:
            loss.backward(np.ones(()))
    assert "version" in str(excinfo.value)


def test_version_counter_bumped_by_optimizers():
    p = Parameter(np.array([1.0]))
    before = p._version
    p.grad = np.array([1.0])
    Adam([p], lr=0.1).step()
    assert p._version == before + 1


def test_clean_training_step_passes_under_anomaly_mode():
    rng = np.random.default_rng(0)
    layer = Linear(4, 3, rng=rng)
    opt = Adam(layer.parameters(), lr=1e-3)
    x = Tensor(rng.normal(size=(5, 4)))
    with detect_anomaly():
        for _ in range(3):
            loss = (layer(x) ** 2).mean()
            opt.zero_grad()
            loss.backward()
            opt.step()
    assert all(np.isfinite(p.data).all() for p in layer.parameters())


# ----------------------------------------------------------------------
# Mode plumbing
# ----------------------------------------------------------------------
def test_detect_anomaly_nesting_and_disable():
    assert not is_anomaly_enabled()
    with detect_anomaly():
        assert is_anomaly_enabled()
        with detect_anomaly(False):
            assert not is_anomaly_enabled()
        assert is_anomaly_enabled()
    assert not is_anomaly_enabled()


def test_detect_anomaly_as_decorator():
    @detect_anomaly()
    def explode():
        return Tensor(np.zeros(1), requires_grad=True).log()

    with pytest.raises(AnomalyError):
        explode()


# ----------------------------------------------------------------------
# Grad-mode satellites: enable_grad + decorators + zero_grad(set_to_none)
# ----------------------------------------------------------------------
def test_enable_grad_reenables_inside_no_grad():
    with no_grad():
        assert not is_grad_enabled()
        with enable_grad():
            assert is_grad_enabled()
            t = Tensor([1.0], requires_grad=True) * 2
        assert not is_grad_enabled()
    assert t.requires_grad


def test_grad_modes_as_decorators():
    @no_grad()
    def frozen():
        return Tensor([1.0], requires_grad=True) * 2

    @enable_grad()
    def thawed():
        return Tensor([1.0], requires_grad=True) * 2

    assert not frozen().requires_grad
    with no_grad():
        assert thawed().requires_grad
    assert frozen.__name__ == "frozen"  # functools.wraps applied


def test_zero_grad_set_to_none_semantics():
    p = Parameter(np.ones(3))
    p.grad = np.ones(3)
    opt = SGD([p], lr=0.1)
    opt.zero_grad()  # default: set_to_none=True
    assert p.grad is None
    p.grad = np.ones(3)
    opt.zero_grad(set_to_none=False)
    assert isinstance(p.grad, np.ndarray)
    assert (p.grad == 0).all()
