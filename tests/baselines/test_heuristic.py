"""Tests for the greedy heuristic planner baseline."""

import numpy as np
import pytest

from repro.baselines import GreedyAgent, GreedyUAVPolicy, GreedyUGVPolicy
from repro.env.observation import UAVObservation


class TestGreedyUGVPolicy:
    def test_invalid_release_fraction(self):
        with pytest.raises(ValueError):
            GreedyUGVPolicy(release_fraction=0.0)

    def test_moves_to_richest_visible_stop(self, toy_env):
        toy_env.reset()
        res_obs = toy_env._ugv_observations()
        obs = res_obs[0]
        # Plant a clear winner among feasible stops (away from current).
        obs.stop_features[:, 2] = 0.0
        feasible = np.nonzero(obs.action_mask[:obs.num_stops])[0]
        target = int(feasible[feasible != obs.current_stop][0])
        obs.stop_features[target, 2] = 1.0
        policy = GreedyUGVPolicy()
        out = policy([obs])
        assert int(out.distribution.mode()[0]) == target

    def test_releases_when_local_stop_rich(self, toy_env):
        toy_env.reset()
        obs = toy_env._ugv_observations()[0]
        obs.stop_features[:, 2] = 0.0
        obs.stop_features[obs.current_stop, 2] = 1.0
        out = GreedyUGVPolicy()([obs])
        assert int(out.distribution.mode()[0]) == obs.num_stops  # release

    def test_mask_constant_not_mistaken_for_data(self, toy_env):
        toy_env.reset()
        obs = toy_env._ugv_observations()[0]
        obs.stop_features[:, 2] = -1.0  # everything unknown
        out = GreedyUGVPolicy()([obs])
        action = int(out.distribution.mode()[0])
        # Nothing known: must not release into the void.
        assert action != obs.num_stops

    def test_never_selects_masked_action(self, toy_env):
        toy_env.reset()
        obs_list = toy_env._ugv_observations()
        out = GreedyUGVPolicy()(obs_list)
        actions = out.distribution.mode()
        for action, obs in zip(actions, obs_list):
            assert obs.action_mask[action]


class TestGreedyUAVPolicy:
    def _obs(self, grid):
        return UAVObservation(agent_index=0, grid=grid, aux=np.zeros(5))

    @staticmethod
    def _heading(movement):
        norm = np.linalg.norm(movement)
        assert norm > 0
        return movement / norm

    def test_flies_toward_data(self):
        grid = np.zeros((3, 9, 9))
        grid[1, 4, 8] = 1.0  # data due east of the centre
        dist, _ = GreedyUAVPolicy()([self._obs(grid)])
        heading = self._heading(dist.mode()[0])
        assert heading[0] > 0.8 and abs(heading[1]) < 0.5

    def test_flies_north_when_data_above(self):
        grid = np.zeros((3, 9, 9))
        grid[1, 8, 4] = 1.0  # raster rows grow with world y: top row = north
        dist, _ = GreedyUAVPolicy()([self._obs(grid)])
        heading = self._heading(dist.mode()[0])
        assert heading[1] > 0.8

    def test_hovers_within_sensing_range(self):
        grid = np.zeros((3, 9, 9))
        grid[1, 5, 5] = 1.0  # one cell away from centre (4, 4)
        dist, _ = GreedyUAVPolicy()([self._obs(grid)])
        np.testing.assert_allclose(dist.mode()[0], np.zeros(2))

    def test_routes_around_wall(self):
        # A vertical wall between the UAV and the data: the first step
        # must not head straight into it.
        grid = np.zeros((3, 11, 11))
        grid[0, 2:9, 7] = 1.0  # wall east of centre (5, 5)
        grid[1, 5, 10] = 1.0  # data beyond the wall
        dist, _ = GreedyUAVPolicy()([self._obs(grid)])
        movement = dist.mode()[0]
        assert np.linalg.norm(movement) > 0
        # With the wall dilated, a due-east heading is blocked; the plan
        # must include a vertical detour component.
        assert abs(movement[1]) > 1e-6

    def test_drifts_when_nothing_visible(self):
        grid = np.zeros((3, 7, 7))
        dist, _ = GreedyUAVPolicy()([self._obs(grid)])
        assert np.linalg.norm(dist.mode()[0]) > 0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GreedyUAVPolicy(cell_metres=0.0)


class TestGreedyAgent:
    def test_noop_training(self, toy_env):
        assert GreedyAgent(toy_env).train(5) == []

    def test_collects_more_than_random(self, toy_env):
        greedy = GreedyAgent(toy_env, seed=0).evaluate(episodes=3)
        from repro.baselines import RandomAgent

        random_snap = RandomAgent(toy_env, seed=0).evaluate(episodes=3)
        # Myopic exploitation must at least match random search on raw
        # collection in a small arena.
        assert greedy.psi >= random_snap.psi * 0.9

    def test_trace(self, toy_env):
        trace = GreedyAgent(toy_env, seed=0).rollout_trace(seed=0)
        assert len(trace) == toy_env.config.episode_len
