"""Per-baseline policy tests: shapes, masking, gradients, one update."""

import numpy as np
import pytest

from repro.baselines import (
    AECommUGVPolicy,
    CubicMapUGVPolicy,
    DGNUGVPolicy,
    GAMUGVPolicy,
    GATUGVPolicy,
    IC3NetUGVPolicy,
    NodeScorer,
    flat_obs_dim,
)
from repro.core import GARLConfig, PPOConfig
from repro.nn import Tensor


@pytest.fixture()
def config():
    return GARLConfig(hidden_dim=8, ppo=PPOConfig(epochs=1, minibatch_size=16))


def graph_policies(env, config):
    rng = np.random.default_rng(0)
    return {
        "gat": GATUGVPolicy(env.stops, config, rng=rng),
        "gam": GAMUGVPolicy(env.stops, config, rng=rng),
        "cubicmap": CubicMapUGVPolicy(env.stops, config, rng=rng),
    }


def flat_policies(env, config):
    rng = np.random.default_rng(0)
    dim = flat_obs_dim(env)
    return {
        "aecomm": AECommUGVPolicy(dim, config, rng=rng),
        "dgn": DGNUGVPolicy(dim, config, rng=rng),
        "ic3net": IC3NetUGVPolicy(dim, config, rng=rng),
    }


def all_policies(env, config):
    return {**graph_policies(env, config), **flat_policies(env, config)}


class TestCommonContract:
    def test_output_shapes(self, toy_env, config):
        res = toy_env.reset()
        u = toy_env.config.num_ugvs
        for name, policy in all_policies(toy_env, config).items():
            if hasattr(policy, "begin_episode"):
                policy.begin_episode()
            out = policy(res.ugv_observations)
            assert out.logits.shape == (u, toy_env.ugv_action_dim), name
            assert out.values.shape == (u,), name

    def test_masking(self, toy_env, config):
        res = toy_env.reset()
        for name, policy in all_policies(toy_env, config).items():
            if hasattr(policy, "begin_episode"):
                policy.begin_episode()
            logits = policy(res.ugv_observations).logits.numpy()
            for i, obs in enumerate(res.ugv_observations):
                assert (logits[i][~obs.action_mask] < -1e8).all(), name

    def test_gradients_flow(self, toy_env, config):
        res = toy_env.reset()
        for name, policy in all_policies(toy_env, config).items():
            if hasattr(policy, "begin_episode"):
                policy.begin_episode()
            out = policy(res.ugv_observations)
            (out.values.sum() + out.logits.clip(-50, 50).sum()).backward()
            grads = sum(p.grad is not None for p in policy.parameters())
            assert grads > 0, name


class TestNodeScorer:
    def test_shapes(self, toy_env):
        scorer = NodeScorer(cond_dim=4, rng=np.random.default_rng(0))
        res = toy_env.reset()
        obs = res.ugv_observations[0]
        cond = Tensor(np.zeros(4))
        out = scorer(obs.stop_features, cond)
        assert out.shape == (toy_env.num_stops,)

    def test_conditioning_changes_scores(self, toy_env):
        scorer = NodeScorer(cond_dim=2, rng=np.random.default_rng(1))
        res = toy_env.reset()
        obs = res.ugv_observations[0]
        a = scorer(obs.stop_features, Tensor(np.array([1.0, 0.0]))).numpy()
        b = scorer(obs.stop_features, Tensor(np.array([-1.0, 5.0]))).numpy()
        assert not np.allclose(a, b)


class TestAEComm:
    def test_reconstruction_loss_positive_and_differentiable(self, toy_env, config):
        policy = AECommUGVPolicy(flat_obs_dim(toy_env), config,
                                 rng=np.random.default_rng(0))
        res = toy_env.reset()
        loss = policy.auxiliary_loss(res.ugv_observations)
        assert loss.item() > 0
        loss.backward()
        assert any(p.grad is not None for p in policy.decoder.parameters())

    def test_single_agent_zero_message(self, toy_campus, toy_stops, config):
        from repro.env import AirGroundEnv, EnvConfig

        env = AirGroundEnv(toy_campus, EnvConfig(num_ugvs=1, num_uavs_per_ugv=1,
                                                 episode_len=5),
                           stops=toy_stops, seed=0)
        res = env.reset()
        policy = AECommUGVPolicy(flat_obs_dim(env), config, rng=np.random.default_rng(0))
        out = policy(res.ugv_observations)
        assert out.logits.shape == (1, env.ugv_action_dim)


class TestIC3Net:
    def test_state_advances_within_episode(self, toy_env, config):
        policy = IC3NetUGVPolicy(flat_obs_dim(toy_env), config,
                                 rng=np.random.default_rng(0))
        res = toy_env.reset()
        policy.begin_episode()
        # Distinct list objects model distinct timesteps (the id-keyed
        # replay cache treats a repeated list as a replay, not a new step).
        obs_t0 = list(res.ugv_observations)
        obs_t1 = list(res.ugv_observations)
        out1 = policy(obs_t0)
        state1 = policy._state[0].numpy().copy()
        out2 = policy(obs_t1)  # same contents, later "time"
        state2 = policy._state[0].numpy().copy()
        assert not np.allclose(state1, state2)
        # Different incoming state -> different logits despite same obs.
        assert not np.allclose(out1.logits.numpy(), out2.logits.numpy())

    def test_replay_uses_cached_state(self, toy_env, config):
        policy = IC3NetUGVPolicy(flat_obs_dim(toy_env), config,
                                 rng=np.random.default_rng(0))
        res = toy_env.reset()
        policy.begin_episode()
        obs = res.ugv_observations
        out_live = policy(obs)
        # A second forward of the SAME list replays the cached incoming
        # state, reproducing the rollout-time logits.
        out_replay = policy(obs)
        np.testing.assert_allclose(out_live.logits.numpy(),
                                   out_replay.logits.numpy())

    def test_begin_episode_resets_state(self, toy_env, config):
        policy = IC3NetUGVPolicy(flat_obs_dim(toy_env), config,
                                 rng=np.random.default_rng(0))
        res = toy_env.reset()
        policy.begin_episode()
        policy(res.ugv_observations)
        policy.begin_episode()
        assert policy._state is None

    def test_post_update_clears_cache(self, toy_env, config):
        policy = IC3NetUGVPolicy(flat_obs_dim(toy_env), config,
                                 rng=np.random.default_rng(0))
        res = toy_env.reset()
        policy.begin_episode()
        policy(res.ugv_observations)
        assert policy._state_cache
        policy.post_update()
        assert not policy._state_cache


class TestGAM:
    def test_top_k_clamped_to_graph_size(self, toy_env, config):
        policy = GAMUGVPolicy(toy_env.stops, config, rng=np.random.default_rng(0),
                              top_k=10_000)
        assert policy.top_k == toy_env.num_stops


class TestCubicMap:
    def test_rasterisation_marks_ugv_cell(self, toy_env, config):
        policy = CubicMapUGVPolicy(toy_env.stops, config, rng=np.random.default_rng(0))
        res = toy_env.reset()
        image = policy._rasterize(res.ugv_observations[0])
        assert image.shape == (2, policy.grid, policy.grid)
        assert image[1].max() > 0  # UGV presence marked

    def test_memory_read_depends_on_input(self, toy_env, config):
        policy = CubicMapUGVPolicy(toy_env.stops, config, rng=np.random.default_rng(0))
        res = toy_env.reset()
        out1 = policy(res.ugv_observations).logits.numpy()
        # Mutate the observation's data channel: output must change.
        import copy

        obs2 = copy.deepcopy(res.ugv_observations)
        for o in obs2:
            o.stop_features[:, 2] = 1.0 - o.stop_features[:, 2]
        out2 = policy(obs2).logits.numpy()
        finite1 = np.where(np.abs(out1) < 1e8, out1, 0.0)
        finite2 = np.where(np.abs(out2) < 1e8, out2, 0.0)
        assert not np.allclose(finite1, finite2)
