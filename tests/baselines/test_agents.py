"""Agent-level tests: registry, one training iteration per method, MADDPG."""

import numpy as np
import pytest

from repro.baselines import AGENT_NAMES, METHOD_LABELS, MADDPGAgent, RandomAgent, make_agent
from repro.core import GARLConfig, PPOConfig


@pytest.fixture()
def fast_config():
    return GARLConfig(hidden_dim=8, mc_gcn_layers=1, ecomm_layers=1,
                      ppo=PPOConfig(epochs=1, minibatch_size=16))


class TestRegistry:
    def test_all_names_construct(self, toy_env, fast_config):
        for name in AGENT_NAMES:
            agent = make_agent(name, toy_env, fast_config)
            assert agent is not None

    def test_unknown_name_raises(self, toy_env):
        with pytest.raises(KeyError):
            make_agent("alphago", toy_env)

    def test_labels_cover_all_methods(self):
        assert set(METHOD_LABELS) == set(AGENT_NAMES)

    def test_ablation_flags_wired(self, toy_env, fast_config):
        wo_mc = make_agent("garl_wo_mc", toy_env, fast_config)
        assert not wo_mc.config.use_mc_gcn and wo_mc.config.use_ecomm
        wo_e = make_agent("garl_wo_e", toy_env, fast_config)
        assert wo_e.config.use_mc_gcn and not wo_e.config.use_ecomm
        wo_both = make_agent("garl_wo_mc_e", toy_env, fast_config)
        assert not wo_both.config.use_mc_gcn and not wo_both.config.use_ecomm


@pytest.mark.parametrize("name", sorted(AGENT_NAMES))
def test_agent_trains_and_evaluates(name, toy_env, fast_config):
    """Every registered method completes one train iteration + evaluation."""
    agent = make_agent(name, toy_env, fast_config)
    agent.train(iterations=1)
    snap = agent.evaluate(episodes=1, greedy=False)
    assert 0.0 <= snap.psi <= 1.0
    assert np.isfinite(snap.efficiency)


@pytest.mark.parametrize("name", ["garl", "gat", "maddpg", "random"])
def test_agent_rollout_trace(name, toy_env, fast_config):
    agent = make_agent(name, toy_env, fast_config)
    trace = agent.rollout_trace(greedy=False, seed=0)
    assert len(trace) == toy_env.config.episode_len
    assert trace[0]["ugv_positions"].shape == (toy_env.config.num_ugvs, 2)


@pytest.mark.parametrize("name", ["garl", "gat", "aecomm", "maddpg"])
def test_agent_save_load(name, toy_env, fast_config, tmp_path):
    agent = make_agent(name, toy_env, fast_config)
    agent.save(tmp_path / name)
    fresh = make_agent(name, toy_env, fast_config.replace(seed=5))
    fresh.load(tmp_path / name)  # must not raise


class TestRandomAgent:
    def test_train_is_noop(self, toy_env):
        agent = RandomAgent(toy_env)
        assert agent.train(iterations=100) == []

    def test_uniform_over_feasible(self, toy_env):
        agent = RandomAgent(toy_env)
        res = toy_env.reset()
        out = agent.ugv_policy(res.ugv_observations)
        probs = np.exp(out.distribution.log_probs_all.numpy())
        for i, obs in enumerate(res.ugv_observations):
            feasible = probs[i][obs.action_mask]
            np.testing.assert_allclose(feasible, feasible[0])
            np.testing.assert_allclose(probs[i][~obs.action_mask], 0.0, atol=1e-12)


class TestMADDPG:
    def test_buffers_fill_during_episode(self, toy_env, fast_config):
        agent = MADDPGAgent(toy_env, fast_config)
        agent._run_episode(explore=True)
        assert len(agent.ugv_buffer) > 0

    def test_update_skipped_until_batch_available(self, toy_env, fast_config):
        agent = MADDPGAgent(toy_env, fast_config, batch_size=10_000)
        agent._run_episode(explore=True)
        assert agent._update_ugv() == {}
        assert agent._update_uav() == {}

    def test_update_changes_actor(self, toy_env, fast_config):
        agent = MADDPGAgent(toy_env, fast_config, batch_size=8)
        for _ in range(2):
            agent._run_episode(explore=True)
        before = {k: v.copy() for k, v in agent.ugv_actor.state_dict().items()}
        losses = agent._update_ugv()
        assert losses
        after = agent.ugv_actor.state_dict()
        assert any(not np.allclose(before[k], after[k]) for k in before)

    def test_soft_update_moves_target(self, toy_env, fast_config):
        agent = MADDPGAgent(toy_env, fast_config, batch_size=8, tau=0.5)
        # Perturb the online actor, then soft-update.
        from repro.baselines.maddpg import _soft_update

        for p in agent.ugv_actor.parameters():
            p.data = p.data + 1.0
        target_before = {k: v.copy() for k, v in agent.ugv_actor_target.state_dict().items()}
        _soft_update(agent.ugv_actor_target, agent.ugv_actor, tau=0.5)
        for name, p in agent.ugv_actor_target.named_parameters():
            expected = 0.5 * target_before[name] + 0.5 * dict(agent.ugv_actor.named_parameters())[name].data
            np.testing.assert_allclose(p.data, expected)

    def test_exploration_epsilon_changes_actions(self, toy_env, fast_config):
        agent = MADDPGAgent(toy_env, fast_config, exploration_eps=1.0)
        res = toy_env.reset()
        greedy = agent._ugv_act(res.ugv_observations, explore=False)
        # With eps=1 every action is resampled uniformly; over a few draws
        # at least one should differ from the greedy argmax.
        diffs = 0
        for _ in range(10):
            explored = agent._ugv_act(res.ugv_observations, explore=True)
            diffs += int((explored != greedy).any())
        assert diffs > 0
