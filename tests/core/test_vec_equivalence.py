"""Vectorized pipeline equivalence: K=1 must reproduce the sequential path.

Golden checks for the batched execution pipeline: a K=1 vectorized
rollout/update draws the same rng streams and computes the same numbers
as ``run_episode`` + ``update_ugv``/``update_uav``, batched policy
forwards match the sequential forwards, and PPO timestep grouping never
degrades to per-sample forwards.
"""

import dataclasses

import numpy as np
import pytest

from repro.baselines.registry import make_agent
from repro.core import (
    GARLConfig,
    PPOConfig,
    run_episode,
    run_vec_episodes,
)
from repro.core.buffer import UAVRollout, UGVRollout, VecUAVRollout, VecUGVRollout
from repro.core.garl import GARLAgent
from repro.core.policies import forward_policy_batched
from repro.env import AirGroundEnv, EnvConfig, VecAirGroundEnv
from repro.env.observation import UGVObsArrays
from repro.nn import no_grad

SMALL = GARLConfig(hidden_dim=8, mc_gcn_layers=1, ecomm_layers=1,
                   ppo=PPOConfig(epochs=1, minibatch_size=16))


def _fresh_env(toy_campus, toy_stops, seed=7):
    config = EnvConfig(num_ugvs=2, num_uavs_per_ugv=2, episode_len=12)
    return AirGroundEnv(toy_campus, config, stops=toy_stops, seed=seed)


def _make_agent(toy_campus, toy_stops, method="garl", **cfg_overrides):
    env = _fresh_env(toy_campus, toy_stops)
    config = SMALL.replace(**cfg_overrides) if cfg_overrides else SMALL
    if method == "garl":
        return env, GARLAgent(env, config)
    return env, make_agent(method, env, config)


def _sequential_collect(env, agent, rng):
    ugv_roll = UGVRollout(env.config.num_ugvs)
    uav_roll = UAVRollout(env.config.num_uavs)
    metrics = run_episode(env, agent.ugv_policy, agent.uav_policy, rng,
                          ugv_rollout=ugv_roll, uav_rollout=uav_roll)
    return ugv_roll, uav_roll, metrics


def _vec_collect(env, agent, rng):
    venv = VecAirGroundEnv.from_env(env, 1)
    cfg = env.config
    ugv_roll = VecUGVRollout(1, cfg.episode_len, cfg.num_ugvs, env.num_stops)
    uav_roll = VecUAVRollout(1, cfg.episode_len, cfg.num_uavs, cfg.uav_obs_size)
    metrics = run_vec_episodes(venv, agent.ugv_policy, agent.uav_policy, rng,
                               episodes=1, ugv_rollout=ugv_roll,
                               uav_rollout=uav_roll)
    return ugv_roll, uav_roll, metrics


class TestK1RolloutEquivalence:
    """One episode at K=1 must be bitwise the sequential episode."""

    @pytest.mark.parametrize("method", ["garl", "gat"])
    def test_golden_rollout(self, toy_campus, toy_stops, method):
        env_a, agent_a = _make_agent(toy_campus, toy_stops, method)
        env_b, agent_b = _make_agent(toy_campus, toy_stops, method)
        seq_ugv, seq_uav, seq_m = _sequential_collect(
            env_a, agent_a, np.random.default_rng(3))
        vec_ugv, vec_uav, vec_m = _vec_collect(
            env_b, agent_b, np.random.default_rng(3))

        assert vec_m.psi == seq_m.psi
        assert vec_m.xi == seq_m.xi
        assert vec_m.zeta == seq_m.zeta
        assert vec_m.beta == seq_m.beta

        np.testing.assert_array_equal(vec_ugv.actions[0],
                                      np.array(seq_ugv.actions))
        np.testing.assert_array_equal(vec_ugv.actionable[0],
                                      np.array(seq_ugv.actionable))
        np.testing.assert_array_equal(vec_ugv.rewards[0],
                                      np.array(seq_ugv.rewards))
        np.testing.assert_allclose(vec_ugv.log_probs[0],
                                   np.array(seq_ugv.log_probs), rtol=1e-12)
        np.testing.assert_allclose(vec_ugv.values[0],
                                   np.array(seq_ugv.values), rtol=1e-12)

        gamma, lam = 0.99, 0.95
        seq_samples = seq_ugv.build_samples(gamma, lam, episode=0)
        flat = vec_ugv.flat_samples(gamma, lam)
        assert len(flat) == len(seq_samples)
        np.testing.assert_allclose(
            flat.advantages, [s.advantage for s in seq_samples], rtol=1e-12)
        np.testing.assert_allclose(
            flat.returns, [s.ret for s in seq_samples], rtol=1e-12)

        # Flat UAV rows are ordered (uav, t); the sequential buffer emits
        # segment-by-segment in closing order — match rows by action key.
        seq_uav_samples = seq_uav.build_samples(gamma, lam)
        uav_flat = vec_uav.flat_samples(gamma, lam)
        assert len(uav_flat) == len(seq_uav_samples)
        by_key = {tuple(np.round(uav_flat.actions[i], 12)):
                  (uav_flat.advantages[i], uav_flat.returns[i])
                  for i in range(len(uav_flat))}
        assert len(by_key) == len(uav_flat)
        for s in seq_uav_samples:
            adv, ret = by_key[tuple(np.round(s.action, 12))]
            assert adv == pytest.approx(s.advantage, rel=1e-12)
            assert ret == pytest.approx(s.ret, rel=1e-12)


class TestK1TrainEquivalence:
    def test_two_train_iterations_match_sequential(self, toy_campus, toy_stops):
        """Full collect+update loop at K=1 leaves identical parameters."""
        ppo = dataclasses.replace(SMALL.ppo, epochs=1, minibatch_size=100000)
        env_a, agent_a = _make_agent(toy_campus, toy_stops, ppo=ppo)
        env_b, agent_b = _make_agent(toy_campus, toy_stops, ppo=ppo)

        for _ in range(2):
            tr = agent_a.trainer
            ugv_s, uav_s, _, _, _ = tr.collect(1)
            seq_losses = {**tr.update_ugv(ugv_s), **tr.update_uav(uav_s)}

            tv = agent_b.trainer
            ugv_r, uav_r, _, _, _ = tv.collect_vec(1, 1)
            vec_losses = {**tv.update_ugv_vec(ugv_r), **tv.update_uav_vec(uav_r)}

            for key, val in seq_losses.items():
                assert vec_losses[key] == pytest.approx(val, rel=1e-9, abs=1e-12)

        params_a = dict(agent_a.ugv_policy.named_parameters())
        params_b = dict(agent_b.ugv_policy.named_parameters())
        assert params_a.keys() == params_b.keys()
        for name, p in params_a.items():
            np.testing.assert_allclose(p.data, params_b[name].data,
                                       rtol=1e-9, atol=1e-12, err_msg=name)
        for name, p in dict(agent_a.uav_policy.named_parameters()).items():
            q = dict(agent_b.uav_policy.named_parameters())[name]
            np.testing.assert_allclose(p.data, q.data, rtol=1e-9, atol=1e-12,
                                       err_msg=name)


class TestBatchedForwardConsistency:
    def _stacked_obs(self, env, replicas=3):
        obs = env.reset().ugv_observations
        return obs, UGVObsArrays.from_observations([obs] * replicas)

    def test_garl_native_forward_batched(self, toy_campus, toy_stops):
        env, agent = _make_agent(toy_campus, toy_stops, "garl")
        obs, stacked = self._stacked_obs(env)
        assert "forward_batched" in type(agent.ugv_policy).__dict__
        with no_grad():
            ref = agent.ugv_policy(obs)
            out = agent.ugv_policy.forward_batched(stacked)
        for p in range(3):
            np.testing.assert_allclose(out.logits.numpy()[p], ref.logits.numpy(),
                                       rtol=1e-12, atol=1e-12)
            np.testing.assert_allclose(out.values.numpy()[p], ref.values.numpy(),
                                       rtol=1e-12, atol=1e-12)

    @pytest.mark.parametrize("method", ["gat", "dgn"])
    def test_mixin_fallback_forward_batched(self, toy_campus, toy_stops, method):
        env, agent = _make_agent(toy_campus, toy_stops, method)
        obs, stacked = self._stacked_obs(env)
        assert agent.ugv_policy.supports_vectorized
        with no_grad():
            ref = agent.ugv_policy(obs)
            out = forward_policy_batched(agent.ugv_policy, stacked)
        for p in range(3):
            np.testing.assert_allclose(out.logits.numpy()[p], ref.logits.numpy(),
                                       rtol=1e-12, atol=1e-12)
            np.testing.assert_allclose(out.values.numpy()[p], ref.values.numpy(),
                                       rtol=1e-12, atol=1e-12)

    def test_ic3net_opts_out(self, toy_campus, toy_stops):
        env, agent = _make_agent(toy_campus, toy_stops, "ic3net")
        assert agent.ugv_policy.supports_vectorized is False
        assert agent.trainer.supports_vectorized() is False


class TestVectorizedTraining:
    def test_k4_smoke_train(self, toy_campus, toy_stops):
        env, agent = _make_agent(toy_campus, toy_stops, "garl")
        assert agent.trainer.supports_vectorized()
        history = agent.train(2, episodes_per_iteration=1, num_envs=4)
        assert len(history) == 2
        for record in history:
            for loss in record.losses.values():
                assert np.isfinite(loss)

    def test_stateful_policy_falls_back_to_sequential(self, toy_campus, toy_stops):
        env, agent = _make_agent(toy_campus, toy_stops, "ic3net")
        history = agent.train(1, episodes_per_iteration=1, num_envs=4)
        assert len(history) == 1
        assert agent.trainer._venv is None  # vec env never built


class _CountingPolicy:
    """Transparent wrapper counting joint UGV forwards."""

    def __init__(self, inner):
        self.inner = inner
        self.calls = 0

    def __call__(self, observations):
        self.calls += 1
        return self.inner(observations)

    def __getattr__(self, name):
        return getattr(self.inner, name)


class TestTimestepGrouping:
    def test_update_forwards_once_per_distinct_timestep(self, toy_campus, toy_stops):
        """The PPO update must group samples by (episode, t), not by the
        identity of the observation list — and never degrade to one
        forward per sample."""
        ppo = dataclasses.replace(SMALL.ppo, epochs=1, minibatch_size=100000)
        env, agent = _make_agent(toy_campus, toy_stops, ppo=ppo)
        trainer = agent.trainer
        ugv_samples, _, _, _, _ = trainer.collect(episodes=2)

        # Defeat id()-based grouping: give every sample its own fresh list
        # object (same contents).  Correct grouping keys on (episode, t).
        for s in ugv_samples:
            s.joint_observations = list(s.joint_observations)

        distinct_timesteps = len({(s.episode, s.t) for s in ugv_samples})
        assert distinct_timesteps < len(ugv_samples)  # >=2 agents share steps

        counting = _CountingPolicy(trainer.ugv_policy)
        trainer.ugv_policy = counting
        trainer.update_ugv(ugv_samples)
        assert counting.calls == ppo.epochs * distinct_timesteps
        assert counting.calls < ppo.epochs * len(ugv_samples)
