"""Tests for the GARLAgent facade and config validation."""

import numpy as np
import pytest

from repro.core import GARLAgent, GARLConfig, PPOConfig


@pytest.fixture()
def fast_config():
    return GARLConfig(hidden_dim=8, mc_gcn_layers=1, ecomm_layers=1,
                      ppo=PPOConfig(epochs=1, minibatch_size=16))


class TestConfig:
    @pytest.mark.parametrize("kwargs", [
        {"mc_gcn_layers": 0},
        {"ecomm_layers": 0},
        {"hidden_dim": 0},
        {"structural_q": 0.0},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            GARLConfig(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        {"gamma": 1.0},
        {"gae_lambda": 1.5},
        {"clip_eps": 0.0},
        {"epochs": 0},
        {"minibatch_size": 0},
    ])
    def test_invalid_ppo_rejected(self, kwargs):
        with pytest.raises(ValueError):
            PPOConfig(**kwargs)

    def test_ablated(self):
        cfg = GARLConfig().ablated(mc=False, ecomm=True)
        assert not cfg.use_mc_gcn and cfg.use_ecomm

    def test_replace(self):
        cfg = GARLConfig().replace(hidden_dim=128)
        assert cfg.hidden_dim == 128


class TestAgent:
    def test_train_and_evaluate(self, toy_env, fast_config):
        agent = GARLAgent(toy_env, fast_config)
        history = agent.train(iterations=2)
        assert len(history) == 2
        snap = agent.evaluate(episodes=1, greedy=False)
        assert np.isfinite(snap.efficiency)

    def test_ablation_flags_change_architecture(self, toy_env, fast_config):
        full = GARLAgent(toy_env, fast_config)
        no_e = GARLAgent(toy_env, fast_config.ablated(ecomm=False))
        assert full.ugv_policy.ecomm is not None
        assert no_e.ugv_policy.ecomm is None
        # w/o E has strictly fewer parameters.
        assert no_e.ugv_policy.num_parameters() < full.ugv_policy.num_parameters()

    def test_save_load_round_trip(self, toy_env, fast_config, tmp_path):
        agent = GARLAgent(toy_env, fast_config)
        agent.train(iterations=1)
        res = toy_env.reset(seed=3)
        logits_before = agent.ugv_policy(res.ugv_observations).logits.numpy()
        agent.save(tmp_path)

        fresh = GARLAgent(toy_env, fast_config.replace(seed=99))
        fresh.load(tmp_path)
        res = toy_env.reset(seed=3)
        logits_after = fresh.ugv_policy(res.ugv_observations).logits.numpy()
        np.testing.assert_allclose(logits_before, logits_after)

    def test_rollout_trace(self, toy_env, fast_config):
        agent = GARLAgent(toy_env, fast_config)
        trace = agent.rollout_trace(greedy=False, seed=1)
        assert len(trace) == toy_env.config.episode_len

    def test_ppo_update_moves_policy_toward_advantaged_action(self, toy_env, fast_config):
        """Policy-gradient sanity: synthetic advantages favouring *release*
        must increase the release action's probability under PPO updates."""
        import numpy as np

        from repro.core.buffer import UGVSample

        agent = GARLAgent(toy_env, fast_config)
        res = toy_env.reset(seed=0)
        joint = res.ugv_observations
        release = toy_env.release_action

        out = agent.ugv_policy(joint)
        probs_before = np.exp(out.distribution.log_probs_all.numpy())[:, release]
        logp = out.distribution.log_prob(np.full(len(joint), release)).numpy()

        samples = [
            UGVSample(joint_observations=joint, agent=u, action=release,
                      log_prob=float(logp[u]), value=0.0, advantage=1.0, ret=1.0)
            for u in range(len(joint))
        ]
        # Counter-samples: staying put carries a negative advantage.
        out_stay = agent.ugv_policy(joint)
        stay_actions = [obs.current_stop for obs in joint]
        logp_stay = out_stay.distribution.log_prob(np.array(stay_actions)).numpy()
        samples += [
            UGVSample(joint_observations=joint, agent=u, action=stay_actions[u],
                      log_prob=float(logp_stay[u]), value=0.0, advantage=-1.0, ret=-1.0)
            for u in range(len(joint))
        ]
        for _ in range(5):
            agent.trainer.update_ugv(samples)

        out_after = agent.ugv_policy(joint)
        probs_after = np.exp(out_after.distribution.log_probs_all.numpy())[:, release]
        assert (probs_after > probs_before).all()
