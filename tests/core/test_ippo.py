"""Tests for the IPPO trainer and episode runner."""

import numpy as np
import pytest

from repro.core import GARLConfig, IPPOTrainer, PPOConfig, UAVPolicy, UGVPolicy, run_episode
from repro.core.buffer import UAVRollout, UGVRollout


@pytest.fixture()
def setup(toy_env):
    config = GARLConfig(hidden_dim=8, mc_gcn_layers=1, ecomm_layers=1,
                        ppo=PPOConfig(epochs=1, minibatch_size=16))
    rng = np.random.default_rng(0)
    ugv = UGVPolicy(toy_env.stops, config, rng=rng)
    uav = UAVPolicy(toy_env.config.uav_obs_size, config, rng=rng)
    trainer = IPPOTrainer(toy_env, ugv, uav, config.ppo, seed=0)
    return toy_env, trainer


class TestRunEpisode:
    def test_fills_rollouts(self, setup):
        env, trainer = setup
        ugv_roll = UGVRollout(env.config.num_ugvs)
        uav_roll = UAVRollout(env.config.num_uavs)
        metrics = run_episode(env, trainer.ugv_policy, trainer.uav_policy,
                              np.random.default_rng(1),
                              ugv_rollout=ugv_roll, uav_rollout=uav_roll)
        assert len(ugv_roll) == env.config.episode_len
        assert 0.0 <= metrics.psi <= 1.0

    def test_trace_records_positions(self, setup):
        env, trainer = setup
        trace = []
        run_episode(env, trainer.ugv_policy, trainer.uav_policy,
                    np.random.default_rng(2), trace=trace)
        assert len(trace) == env.config.episode_len
        assert trace[0]["ugv_positions"].shape == (env.config.num_ugvs, 2)
        assert trace[0]["uav_airborne"].shape == (env.config.num_uavs,)

    def test_greedy_is_deterministic(self, setup):
        env, trainer = setup

        def run(seed):
            env.reset(seed)
            trace = []
            run_episode(env, trainer.ugv_policy, trainer.uav_policy,
                        np.random.default_rng(0), greedy=True, trace=trace)
            return np.concatenate([t["ugv_positions"].ravel() for t in trace])

        np.testing.assert_allclose(run(5), run(5))


class TestCollect:
    def test_sample_counts(self, setup):
        env, trainer = setup
        ugv_samples, uav_samples, metrics, ugv_r, uav_r = trainer.collect(episodes=1)
        # Every actionable (t, u) pair becomes one UGV sample.
        assert 0 < len(ugv_samples) <= env.config.episode_len * env.config.num_ugvs
        assert np.isfinite(ugv_r)
        assert metrics is not None

    def test_multiple_episodes_accumulate(self, setup):
        env, trainer = setup
        one, *_ = trainer.collect(episodes=1)
        two, *_ = trainer.collect(episodes=2)
        assert len(two) > len(one)


class TestUpdate:
    def test_update_changes_parameters(self, setup):
        env, trainer = setup
        before = {k: v.copy() for k, v in trainer.ugv_policy.state_dict().items()}
        ugv_samples, uav_samples, *_ = trainer.collect(episodes=1)
        losses = trainer.update_ugv(ugv_samples)
        after = trainer.ugv_policy.state_dict()
        changed = any(not np.allclose(before[k], after[k]) for k in before)
        assert changed
        assert np.isfinite(losses["ugv_policy_loss"])
        assert losses["ugv_value_loss"] >= 0.0

    def test_uav_update_changes_parameters(self, setup):
        env, trainer = setup
        # Force a release so airborne UAV observations exist.
        env.reset(seed=0)
        res = env.step([env.release_action] * env.config.num_ugvs,
                       [None] * env.config.num_uavs)
        obs = [o for o in res.uav_observations if o is not None]
        assert obs
        from repro.core.buffer import UAVSample

        rng = np.random.default_rng(0)
        uav_samples = [
            UAVSample(observation=o, action=rng.normal(size=2) * 0.1,
                      log_prob=-2.0, value=0.0,
                      advantage=float(rng.normal()), ret=float(rng.normal()))
            for o in obs
        ]
        before = {k: v.copy() for k, v in trainer.uav_policy.state_dict().items()}
        losses = trainer.update_uav(uav_samples)
        after = trainer.uav_policy.state_dict()
        assert any(not np.allclose(before[k], after[k]) for k in before)
        assert np.isfinite(losses["uav_policy_loss"])

    def test_empty_samples_are_noop(self, setup):
        _, trainer = setup
        assert trainer.update_ugv([]) == {"ugv_policy_loss": 0.0, "ugv_value_loss": 0.0}
        assert trainer.update_uav([]) == {"uav_policy_loss": 0.0, "uav_value_loss": 0.0}

    def test_train_produces_history(self, setup):
        env, trainer = setup
        seen = []
        history = trainer.train(iterations=2, callback=seen.append)
        assert len(history) == 2
        assert len(seen) == 2
        assert history[0].iteration == 0
        assert "ugv_policy_loss" in history[0].losses
        assert "efficiency" in history[0].metrics

    def test_evaluate_returns_snapshot(self, setup):
        _, trainer = setup
        snap = trainer.evaluate(episodes=1, greedy=False)
        assert 0.0 <= snap.psi <= 1.0
        assert np.isfinite(snap.efficiency)


class TestHooks:
    def test_auxiliary_loss_hook_called(self, toy_env):
        from repro.baselines import AECommAgent

        calls = []
        agent = AECommAgent(toy_env, GARLConfig(hidden_dim=8,
                                                ppo=PPOConfig(epochs=1, minibatch_size=16)))
        original = agent.ugv_policy.auxiliary_loss

        def spy(observations):
            calls.append(1)
            return original(observations)

        agent.ugv_policy.auxiliary_loss = spy
        agent.train(iterations=1)
        assert calls

    def test_post_update_hook_called(self, toy_env):
        from repro.baselines import IC3NetAgent

        agent = IC3NetAgent(toy_env, GARLConfig(hidden_dim=8,
                                                ppo=PPOConfig(epochs=1, minibatch_size=16)))
        agent.train(iterations=1)
        # post_update clears the state cache after each iteration.
        assert agent.ugv_policy._state_cache == {}
