"""Tests for E-Comm (Section IV-C): shapes, invariance and equivariance.

The paper's central claim about E-Comm is that message aggregation is
E(2)-*invariant* while target updating is E(2)-*equivariant*: applying a
rotation R and translation t to the input coordinates leaves the
non-geometric features h unchanged and maps the geometric outputs g to
R g + t.  These are property-tested over random rototranslations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EComm, GARLConfig
from repro.nn import Tensor


def rotation(angle: float) -> np.ndarray:
    c, s = np.cos(angle), np.sin(angle)
    return np.array([[c, -s], [s, c]])


@pytest.fixture()
def config():
    return GARLConfig(hidden_dim=8, ecomm_layers=2, ecomm_clip=10.0)


def run_layers(ecomm: EComm, h: np.ndarray, g: np.ndarray):
    """Run only the message-passing layers, skipping the stop readout."""
    ht = Tensor(h)
    gt = Tensor(g)
    for layer in ecomm.layers:
        ht, gt = layer(ht, gt)
    return ht.numpy(), gt.numpy()


class TestShapes:
    def test_forward_shapes(self, toy_stops, config):
        ecomm = EComm(config.hidden_dim, config)
        u = 4
        h = np.random.default_rng(0).normal(size=(u, config.hidden_dim))
        g = np.random.default_rng(1).uniform(0, 400, size=(u, 2))
        h_out, z, g_out = ecomm(Tensor(h), g, toy_stops.positions)
        assert h_out.shape == (u, config.hidden_dim)
        assert z.shape == (u, toy_stops.num_stops)
        assert g_out.shape == (u, 2)

    def test_single_agent_passthrough_geometry(self, toy_stops, config):
        ecomm = EComm(config.hidden_dim, config)
        h = np.random.default_rng(2).normal(size=(1, config.hidden_dim))
        g = np.array([[100.0, 100.0]])
        _, _, g_out = ecomm(Tensor(h), g, toy_stops.positions)
        np.testing.assert_allclose(g_out.numpy(), g)

    def test_gradients_reach_parameters(self, toy_stops, config):
        ecomm = EComm(config.hidden_dim, config)
        h = Tensor(np.random.default_rng(3).normal(size=(3, config.hidden_dim)),
                   requires_grad=True)
        g = np.random.default_rng(4).uniform(0, 400, size=(3, 2))
        h_out, z, _ = ecomm(h, g, toy_stops.positions)
        (h_out.sum() + z.sum()).backward()
        for name, p in ecomm.named_parameters():
            assert p.grad is not None, f"no gradient for {name}"
        assert h.grad is not None


class TestEquivariance:
    @settings(max_examples=20, deadline=None)
    @given(st.floats(0, 2 * np.pi), st.floats(-100, 100), st.floats(-100, 100))
    def test_h_invariant_under_rototranslation(self, angle, tx, ty):
        config = GARLConfig(hidden_dim=6, ecomm_layers=2, ecomm_clip=10.0)
        ecomm = EComm(config.hidden_dim, config, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        h = rng.normal(size=(4, 6))
        g = rng.uniform(0, 300, size=(4, 2))
        rot = rotation(angle)
        g2 = g @ rot.T + np.array([tx, ty])
        h_out1, _ = run_layers(ecomm, h, g)
        h_out2, _ = run_layers(ecomm, h, g2)
        np.testing.assert_allclose(h_out1, h_out2, atol=1e-8)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(0, 2 * np.pi), st.floats(-100, 100), st.floats(-100, 100))
    def test_g_equivariant_under_rototranslation(self, angle, tx, ty):
        config = GARLConfig(hidden_dim=6, ecomm_layers=3, ecomm_clip=10.0)
        ecomm = EComm(config.hidden_dim, config, rng=np.random.default_rng(0))
        rng = np.random.default_rng(2)
        h = rng.normal(size=(3, 6))
        g = rng.uniform(0, 300, size=(3, 2))
        rot = rotation(angle)
        shift = np.array([tx, ty])
        _, g_out1 = run_layers(ecomm, h, g)
        _, g_out2 = run_layers(ecomm, h, g @ rot.T + shift)
        np.testing.assert_allclose(g_out2, g_out1 @ rot.T + shift, atol=1e-6)

    def test_permutation_equivariance(self, config):
        ecomm = EComm(config.hidden_dim, config, rng=np.random.default_rng(0))
        rng = np.random.default_rng(3)
        h = rng.normal(size=(4, config.hidden_dim))
        g = rng.uniform(0, 300, size=(4, 2))
        perm = np.array([2, 0, 3, 1])
        h_out1, g_out1 = run_layers(ecomm, h, g)
        h_out2, g_out2 = run_layers(ecomm, h[perm], g[perm])
        np.testing.assert_allclose(h_out2, h_out1[perm], atol=1e-8)
        np.testing.assert_allclose(g_out2, g_out1[perm], atol=1e-8)

    def test_clip_bounds_geometry_update(self):
        config = GARLConfig(hidden_dim=6, ecomm_layers=1, ecomm_clip=0.5)
        ecomm = EComm(config.hidden_dim, config, rng=np.random.default_rng(0))
        rng = np.random.default_rng(4)
        h = rng.normal(size=(3, 6)) * 100.0  # large features -> large effect
        g = rng.uniform(0, 300, size=(3, 2))
        _, g_out = run_layers(ecomm, h, g)
        moved = np.linalg.norm(g_out - g, axis=-1)
        assert (moved <= 0.5 + 1e-9).all()

    def test_closer_neighbours_weighted_more(self, config):
        # Eqn. (26): a UGV right next to u should dominate the softmax
        # over one far away, so moving the far one barely changes u's h.
        ecomm = EComm(config.hidden_dim, config, rng=np.random.default_rng(0))
        rng = np.random.default_rng(5)
        h = rng.normal(size=(3, config.hidden_dim))
        base = np.array([[0.0, 0.0], [1.0, 0.0], [500.0, 0.0]])
        far_moved = np.array([[0.0, 0.0], [1.0, 0.0], [600.0, 100.0]])
        near_moved = np.array([[0.0, 0.0], [30.0, 0.0], [500.0, 0.0]])
        h0, _ = run_layers(ecomm, h, base)
        h_far, _ = run_layers(ecomm, h, far_moved)
        h_near, _ = run_layers(ecomm, h, near_moved)
        delta_far = np.abs(h_far[0] - h0[0]).sum()
        delta_near = np.abs(h_near[0] - h0[0]).sum()
        assert delta_near > delta_far


class TestReadout:
    def test_z_scores_reflect_target_alignment(self, toy_stops):
        # With W3 = I, z_b = x_b . g: stops aligned with the target vector
        # score highest.
        config = GARLConfig(hidden_dim=4, ecomm_layers=1)
        ecomm = EComm(config.hidden_dim, config, rng=np.random.default_rng(0))
        ecomm.w3.weight.data = np.eye(2)
        rng = np.random.default_rng(1)
        h = Tensor(rng.normal(size=(2, 4)))
        g = np.array([[200.0, 200.0], [210.0, 190.0]])
        _, z, g_out = ecomm(h, g, toy_stops.positions)
        expected = toy_stops.positions @ g_out.numpy().T
        np.testing.assert_allclose(z.numpy(), expected.T, atol=1e-8)


class TestUniformWeightsAblation:
    def test_uniform_alpha_is_mean(self):
        config = GARLConfig(hidden_dim=4, ecomm_layers=1,
                            ecomm_uniform_weights=True)
        ecomm = EComm(config.hidden_dim, config, rng=np.random.default_rng(0))
        layer = ecomm.layers[0]
        assert layer.uniform_weights

    def test_uniform_variant_ignores_distance_changes(self):
        # With uniform weights, scaling all pairwise distances leaves the
        # aggregated h unchanged (only directions enter g, not h).
        config = GARLConfig(hidden_dim=6, ecomm_layers=1,
                            ecomm_uniform_weights=True, ecomm_clip=1e9)
        ecomm = EComm(config.hidden_dim, config, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        h = rng.normal(size=(3, 6))
        g = rng.uniform(0, 100, size=(3, 2))
        centre = g.mean(axis=0)
        h1, _ = run_layers(ecomm, h, g)
        h2, _ = run_layers(ecomm, h, centre + (g - centre) * 5.0)
        np.testing.assert_allclose(h1, h2, atol=1e-9)

    def test_default_variant_sensitive_to_distance_changes(self):
        config = GARLConfig(hidden_dim=6, ecomm_layers=1, ecomm_clip=1e9)
        ecomm = EComm(config.hidden_dim, config, rng=np.random.default_rng(0))
        rng = np.random.default_rng(1)
        h = rng.normal(size=(3, 6))
        # Asymmetric formation so the softmax weights are non-uniform.
        g = np.array([[0.0, 0.0], [10.0, 0.0], [200.0, 0.0]])
        centre = g.mean(axis=0)
        h1, _ = run_layers(ecomm, h, g)
        h2, _ = run_layers(ecomm, h, centre + (g - centre) * 5.0)
        assert not np.allclose(h1, h2, atol=1e-9)
