"""Tests for hyperparameter schedules and their trainer integration."""

import numpy as np
import pytest

from repro.core.schedules import (
    ConstantSchedule,
    CosineSchedule,
    ExponentialSchedule,
    LinearSchedule,
)


class TestSchedules:
    def test_progress_range_enforced(self):
        with pytest.raises(ValueError):
            ConstantSchedule(1.0)(1.5)
        with pytest.raises(ValueError):
            LinearSchedule(1.0, 0.0)(-0.1)

    def test_constant(self):
        s = ConstantSchedule(0.3)
        assert s(0.0) == s(0.5) == s(1.0) == 0.3

    def test_linear_endpoints_and_midpoint(self):
        s = LinearSchedule(1.0, 0.0)
        assert s(0.0) == 1.0
        assert s(1.0) == 0.0
        assert s(0.5) == pytest.approx(0.5)

    def test_cosine_endpoints_and_monotone(self):
        s = CosineSchedule(1.0, 0.1)
        assert s(0.0) == pytest.approx(1.0)
        assert s(1.0) == pytest.approx(0.1)
        values = [s(p) for p in np.linspace(0, 1, 11)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_exponential_endpoints(self):
        s = ExponentialSchedule(1.0, 0.01)
        assert s(0.0) == pytest.approx(1.0)
        assert s(1.0) == pytest.approx(0.01)
        assert s(0.5) == pytest.approx(0.1)

    def test_exponential_requires_positive(self):
        with pytest.raises(ValueError):
            ExponentialSchedule(0.0, 1.0)


class TestTrainerIntegration:
    def test_lr_schedule_applied(self, toy_env):
        from repro.core import GARLConfig, IPPOTrainer, PPOConfig, UAVPolicy, UGVPolicy

        config = GARLConfig(hidden_dim=8, mc_gcn_layers=1, ecomm_layers=1,
                            ppo=PPOConfig(epochs=1, minibatch_size=16))
        rng = np.random.default_rng(0)
        trainer = IPPOTrainer(toy_env,
                              UGVPolicy(toy_env.stops, config, rng=rng),
                              UAVPolicy(toy_env.config.uav_obs_size, config, rng=rng),
                              config.ppo, seed=0,
                              lr_schedule=LinearSchedule(1e-3, 1e-5),
                              entropy_schedule=LinearSchedule(0.05, 0.0))
        trainer.train(iterations=2)
        # After the final iteration the lr must sit at the schedule's end.
        assert trainer.ugv_optimizer.lr == pytest.approx(1e-5)
        assert trainer._entropy_coef == pytest.approx(0.0)
