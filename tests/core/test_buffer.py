"""Tests for the UGV/UAV rollout buffers."""

import numpy as np
import pytest

from repro.core import UAVRollout, UGVRollout, compute_gae


def make_ugv_rollout(t=4, u=2, actionable=None):
    roll = UGVRollout(u)
    rng = np.random.default_rng(0)
    for step in range(t):
        act = actionable[step] if actionable is not None else np.ones(u, dtype=bool)
        roll.add(
            obs=[f"obs-{step}-{agent}" for agent in range(u)],
            actions=rng.integers(0, 5, u),
            log_probs=rng.normal(size=u),
            values=rng.normal(size=u),
            rewards=rng.normal(size=u),
            actionable=act,
            done=(step == t - 1),
        )
    return roll


class TestUGVRollout:
    def test_length(self):
        assert len(make_ugv_rollout(t=5)) == 5

    def test_samples_only_for_actionable_steps(self):
        actionable = np.array([
            [True, True],
            [False, True],
            [True, False],
            [True, True],
        ])
        roll = make_ugv_rollout(t=4, u=2, actionable=actionable)
        samples = roll.build_samples(gamma=0.9, lam=0.95)
        assert len(samples) == int(actionable.sum())
        for s in samples:
            t = int(s.joint_observations[0].split("-")[1])
            assert actionable[t][s.agent]

    def test_advantages_match_direct_gae(self):
        roll = make_ugv_rollout(t=6, u=1)
        samples = roll.build_samples(gamma=0.9, lam=0.8)
        rewards = np.asarray(roll.rewards)[:, 0]
        values = np.asarray(roll.values)[:, 0]
        dones = np.asarray(roll.dones)
        adv, ret = compute_gae(rewards, values, dones, 0.9, 0.8)
        got_adv = [s.advantage for s in samples]
        np.testing.assert_allclose(got_adv, adv)
        np.testing.assert_allclose([s.ret for s in samples], ret)

    def test_samples_share_joint_observation_identity(self):
        roll = make_ugv_rollout(t=2, u=3)
        samples = roll.build_samples(0.9, 0.95)
        step0 = [s for s in samples if s.joint_observations[0] == "obs-0-0"]
        assert len(step0) == 3
        assert all(s.joint_observations is step0[0].joint_observations for s in step0)

    def test_rewards_flow_into_actionable_advantage(self):
        # A release at t=0 (actionable) followed by waiting steps with
        # reward must produce a positive advantage at t=0.
        roll = UGVRollout(1)
        actionable = [True, False, False]
        rewards = [0.0, 5.0, 5.0]
        for t in range(3):
            roll.add(obs=[f"o{t}"], actions=[0], log_probs=[0.0], values=[0.0],
                     rewards=[rewards[t]], actionable=[actionable[t]], done=(t == 2))
        samples = roll.build_samples(gamma=0.99, lam=0.95)
        assert len(samples) == 1
        assert samples[0].advantage > 5.0


class TestUAVRollout:
    def test_segments_closed_on_docking(self):
        roll = UAVRollout(2)
        for t in range(3):
            roll.add(0, observation=f"obs{t}", action=np.zeros(2),
                     log_prob=0.0, value=0.0, reward=1.0)
        roll.close_flight(0)
        samples = roll.build_samples(gamma=0.9, lam=1.0)
        assert len(samples) == 3
        # Monte-Carlo returns of an all-ones reward: 1+.9+.81, 1+.9, 1.
        np.testing.assert_allclose(sorted(s.ret for s in samples),
                                   sorted([2.71, 1.9, 1.0]))

    def test_two_flights_are_independent(self):
        roll = UAVRollout(1)
        roll.add(0, "a", np.zeros(2), 0.0, 0.0, reward=100.0)
        roll.close_flight(0)
        roll.add(0, "b", np.zeros(2), 0.0, 0.0, reward=0.0)
        roll.close_flight(0)
        samples = roll.build_samples(gamma=0.99, lam=0.95)
        rets = sorted(s.ret for s in samples)
        # The second flight must not inherit the first's reward.
        np.testing.assert_allclose(rets, [0.0, 100.0])

    def test_close_all_seals_open_segments(self):
        roll = UAVRollout(3)
        roll.add(0, "x", np.zeros(2), 0.0, 0.0, 1.0)
        roll.add(2, "y", np.zeros(2), 0.0, 0.0, 1.0)
        assert roll.num_transitions == 2
        samples = roll.build_samples(0.9, 0.95)  # implicitly closes all
        assert len(samples) == 2

    def test_close_flight_without_transitions_is_noop(self):
        roll = UAVRollout(1)
        roll.close_flight(0)
        assert roll.build_samples(0.9, 0.95) == []
