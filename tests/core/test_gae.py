"""Tests for Generalized Advantage Estimation."""

import numpy as np
import pytest

from repro.core import compute_gae


class TestGAE:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            compute_gae(np.ones(3), np.ones(2), np.zeros(3, dtype=bool), 0.9, 0.95)

    def test_single_terminal_step(self):
        adv, ret = compute_gae(np.array([1.0]), np.array([0.5]),
                               np.array([True]), gamma=0.9, lam=0.95)
        # delta = r - V = 0.5 (terminal: no bootstrap)
        np.testing.assert_allclose(adv, [0.5])
        np.testing.assert_allclose(ret, [1.0])

    def test_lambda_zero_is_td_error(self):
        rewards = np.array([1.0, 2.0, 3.0])
        values = np.array([0.5, 1.0, 1.5])
        dones = np.array([False, False, True])
        gamma = 0.9
        adv, _ = compute_gae(rewards, values, dones, gamma, lam=0.0)
        expected = np.array([
            1.0 + gamma * 1.0 - 0.5,
            2.0 + gamma * 1.5 - 1.0,
            3.0 - 1.5,
        ])
        np.testing.assert_allclose(adv, expected)

    def test_lambda_one_is_monte_carlo(self):
        rewards = np.array([1.0, 1.0, 1.0])
        values = np.array([0.0, 0.0, 0.0])
        dones = np.array([False, False, True])
        gamma = 0.5
        adv, ret = compute_gae(rewards, values, dones, gamma, lam=1.0)
        # Discounted returns: 1 + 0.5 + 0.25, 1 + 0.5, 1.
        np.testing.assert_allclose(ret, [1.75, 1.5, 1.0])
        np.testing.assert_allclose(adv, ret)  # values are zero

    def test_hand_computed_two_steps(self):
        rewards = np.array([0.0, 1.0])
        values = np.array([0.2, 0.4])
        dones = np.array([False, True])
        gamma, lam = 0.9, 0.8
        delta1 = 1.0 - 0.4
        delta0 = 0.0 + 0.9 * 0.4 - 0.2
        adv1 = delta1
        adv0 = delta0 + gamma * lam * adv1
        adv, ret = compute_gae(rewards, values, dones, gamma, lam)
        np.testing.assert_allclose(adv, [adv0, adv1])
        np.testing.assert_allclose(ret, [adv0 + 0.2, adv1 + 0.4])

    def test_done_resets_accumulation(self):
        # Two one-step episodes back to back: the second episode's reward
        # must not bleed into the first's advantage.
        rewards = np.array([1.0, 100.0])
        values = np.array([0.0, 0.0])
        dones = np.array([True, True])
        adv, _ = compute_gae(rewards, values, dones, 0.99, 0.95)
        np.testing.assert_allclose(adv, [1.0, 100.0])

    def test_bootstrap_with_last_value(self):
        rewards = np.array([0.0])
        values = np.array([0.0])
        dones = np.array([False])  # truncated, not terminal
        adv, _ = compute_gae(rewards, values, dones, gamma=0.9, lam=1.0, last_value=2.0)
        np.testing.assert_allclose(adv, [1.8])

    def test_returns_equal_adv_plus_values(self):
        rng = np.random.default_rng(0)
        rewards = rng.normal(size=20)
        values = rng.normal(size=20)
        dones = rng.random(20) < 0.2
        dones[-1] = True
        adv, ret = compute_gae(rewards, values, dones, 0.95, 0.9)
        np.testing.assert_allclose(ret, adv + values)
