"""Tests for the UGV (GARL) and UAV actor-critic policies."""

import numpy as np
import pytest

from repro.core import GARLConfig, UAVPolicy, UGVPolicy
from repro.env import EnvConfig


@pytest.fixture()
def config():
    return GARLConfig(hidden_dim=8, mc_gcn_layers=2, ecomm_layers=2)


class TestUGVPolicy:
    def test_output_shapes(self, toy_env, config):
        res = toy_env.reset()
        policy = UGVPolicy(toy_env.stops, config)
        out = policy(res.ugv_observations)
        u = toy_env.config.num_ugvs
        assert out.logits.shape == (u, toy_env.ugv_action_dim)
        assert out.values.shape == (u,)

    def test_infeasible_actions_masked(self, toy_env, config):
        res = toy_env.reset()
        policy = UGVPolicy(toy_env.stops, config)
        out = policy(res.ugv_observations)
        for u, obs in enumerate(res.ugv_observations):
            logits = out.logits.numpy()[u]
            assert (logits[~obs.action_mask] < -1e8).all()
            assert (logits[obs.action_mask] > -1e8).all()

    def test_sampling_respects_mask(self, toy_env, config):
        res = toy_env.reset()
        policy = UGVPolicy(toy_env.stops, config)
        out = policy(res.ugv_observations)
        rng = np.random.default_rng(0)
        for _ in range(50):
            actions = out.distribution.sample(rng)
            for u, obs in enumerate(res.ugv_observations):
                assert obs.action_mask[actions[u]]

    def test_ablation_without_ecomm(self, toy_env, config):
        policy = UGVPolicy(toy_env.stops, config.ablated(ecomm=False))
        assert policy.ecomm is None
        res = toy_env.reset()
        out = policy(res.ugv_observations)
        assert np.isfinite(out.values.numpy()).all()

    def test_gradients_flow_end_to_end(self, toy_env, config):
        res = toy_env.reset()
        policy = UGVPolicy(toy_env.stops, config)
        out = policy(res.ugv_observations)
        actions = out.distribution.mode()
        loss = -out.distribution.log_prob(actions).sum() + (out.values**2).sum()
        loss.backward()
        grads = [p.grad is not None for _, p in policy.named_parameters()]
        # All heads plus MC-GCN and E-Comm must receive gradient.
        assert sum(grads) >= len(grads) - 1  # z_scale may be zero-grad if z==0

    def test_deterministic_given_seed(self, toy_env, config):
        res = toy_env.reset()
        a = UGVPolicy(toy_env.stops, config, rng=np.random.default_rng(1))
        b = UGVPolicy(toy_env.stops, config, rng=np.random.default_rng(1))
        np.testing.assert_array_equal(a(res.ugv_observations).logits.numpy(),
                                      b(res.ugv_observations).logits.numpy())

    def test_state_dict_round_trip_preserves_outputs(self, toy_env, config):
        res = toy_env.reset()
        a = UGVPolicy(toy_env.stops, config, rng=np.random.default_rng(1))
        b = UGVPolicy(toy_env.stops, config, rng=np.random.default_rng(2))
        b.load_state_dict(a.state_dict())
        np.testing.assert_allclose(a(res.ugv_observations).logits.numpy(),
                                   b(res.ugv_observations).logits.numpy())


class TestUAVPolicy:
    def _airborne(self, toy_env):
        res = toy_env.reset()
        res = toy_env.step([toy_env.release_action] * toy_env.config.num_ugvs,
                           [None] * toy_env.config.num_uavs)
        return [o for o in res.uav_observations if o is not None]

    def test_forward_shapes(self, toy_env, config):
        obs = self._airborne(toy_env)
        policy = UAVPolicy(toy_env.config.uav_obs_size, config)
        dist, values = policy(obs)
        assert dist.mean.shape == (len(obs), 2)
        assert values.shape == (len(obs),)

    def test_mean_bounded_by_tanh(self, toy_env, config):
        obs = self._airborne(toy_env)
        policy = UAVPolicy(toy_env.config.uav_obs_size, config)
        dist, _ = policy(obs)
        assert (np.abs(dist.mean.numpy()) <= 1.0).all()

    def test_log_std_is_learnable(self, toy_env, config):
        obs = self._airborne(toy_env)
        policy = UAVPolicy(toy_env.config.uav_obs_size, config)
        dist, _ = policy(obs)
        sample = dist.sample(np.random.default_rng(0))
        dist.log_prob(sample).sum().backward()
        assert policy.log_std.grad is not None

    def test_works_with_any_obs_radius(self, toy_campus, toy_stops, config):
        from repro.env import AirGroundEnv

        cfg = EnvConfig(num_ugvs=1, num_uavs_per_ugv=1, episode_len=5,
                        uav_obs_radius=5)
        env = AirGroundEnv(toy_campus, cfg, stops=toy_stops, seed=0)
        env.reset()
        res = env.step([env.release_action], [None])
        obs = [o for o in res.uav_observations if o is not None]
        policy = UAVPolicy(cfg.uav_obs_size, config)
        dist, values = policy(obs)
        assert dist.mean.shape == (1, 2)


class TestReleaseBias:
    def test_release_head_bias_initialised(self, toy_env, config):
        from repro.core.policies import RELEASE_BIAS

        policy = UGVPolicy(toy_env.stops, config)
        from repro.nn import Linear

        last = None
        for module in policy.release_head.modules():
            if isinstance(module, Linear):
                last = module
        np.testing.assert_allclose(last.bias.data, RELEASE_BIAS)

    def test_release_probability_elevated_at_init(self, toy_env, config):
        # Release must start far above the 1/(B+1) uniform floor so early
        # training actually flies UAVs.
        policy = UGVPolicy(toy_env.stops, config)
        res = toy_env.reset()
        out = policy(res.ugv_observations)
        probs = np.exp(out.distribution.log_probs_all.numpy())
        release = toy_env.release_action
        uniform_floor = 1.0 / toy_env.ugv_action_dim
        assert (probs[:, release] > 3 * uniform_floor).all()
