"""Vectorized rollout storage vs the sequential reference buffers."""

import numpy as np
import pytest

from repro.core.buffer import (
    UAVRollout,
    UGVRollout,
    VecUAVRollout,
    VecUGVRollout,
)
from repro.core.gae import compute_gae, compute_gae_batch
from repro.env.observation import UAVObsArrays, UGVObsArrays

GAMMA, LAM = 0.99, 0.95


class TestComputeGaeBatch:
    def test_matches_per_stream_gae_with_shared_dones(self):
        rng = np.random.default_rng(0)
        k, t, u = 3, 20, 4
        rewards = rng.standard_normal((k, t, u))
        values = rng.standard_normal((k, t, u))
        dones = np.zeros((k, t), dtype=bool)
        dones[:, 9] = dones[:, -1] = True  # two episodes per replica
        adv, ret = compute_gae_batch(rewards, values, dones, GAMMA, LAM)
        for ki in range(k):
            for ui in range(u):
                ref_adv, ref_ret = compute_gae(rewards[ki, :, ui],
                                               values[ki, :, ui],
                                               dones[ki], GAMMA, LAM)
                np.testing.assert_allclose(adv[ki, :, ui], ref_adv, rtol=1e-12)
                np.testing.assert_allclose(ret[ki, :, ui], ref_ret, rtol=1e-12)

    def test_matches_per_stream_gae_with_full_shape_dones(self):
        """Per-stream terminals (the UAV flight-end case)."""
        rng = np.random.default_rng(1)
        k, t, v = 2, 16, 3
        rewards = rng.standard_normal((k, t, v))
        values = rng.standard_normal((k, t, v))
        dones = rng.random((k, t, v)) < 0.25
        dones[:, -1] = True
        adv, ret = compute_gae_batch(rewards, values, dones, GAMMA, LAM)
        for ki in range(k):
            for vi in range(v):
                ref_adv, ref_ret = compute_gae(rewards[ki, :, vi],
                                               values[ki, :, vi],
                                               dones[ki, :, vi], GAMMA, LAM)
                np.testing.assert_allclose(adv[ki, :, vi], ref_adv, rtol=1e-12)
                np.testing.assert_allclose(ret[ki, :, vi], ref_ret, rtol=1e-12)

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            compute_gae_batch(np.zeros((2, 5, 3)), np.zeros((2, 5, 2)),
                              np.zeros((2, 5), dtype=bool), GAMMA, LAM)
        with pytest.raises(ValueError):
            compute_gae_batch(np.zeros((2, 5, 3)), np.zeros((2, 5, 3)),
                              np.zeros((3, 5), dtype=bool), GAMMA, LAM)


def _collect_both_ugv(env, horizon, seed):
    """Drive one env, filling a sequential UGVRollout and a K=1 vec rollout
    with identical synthetic policy outputs."""
    rng = np.random.default_rng(seed)
    u, b = env.config.num_ugvs, env.num_stops
    seq = UGVRollout(num_agents=u)
    vec = VecUGVRollout(1, horizon, u, b)
    res = env.reset()
    obs_buf = UGVObsArrays.allocate((1,), u, b)
    episode_done = False
    for t in range(horizon):
        if episode_done:
            res = env.reset()
            episode_done = False
        actionable = env._actionable()
        actions = rng.integers(0, b + 1, u)
        log_probs = rng.standard_normal(u)
        values = rng.standard_normal(u)
        obs_list = res.ugv_observations
        step = env.step(actions, rng.uniform(-20, 20, (env.config.num_uavs, 2)))
        seq.add(obs_list, actions, log_probs, values, step.ugv_rewards,
                actionable, step.done)
        stacked = UGVObsArrays.from_observations([obs_list])
        obs_buf.write((0,), stacked.index(0))
        vec.add(obs_buf, actions[None], log_probs[None], values[None],
                step.ugv_rewards[None], actionable[None],
                np.array([step.done]))
        res = step
        episode_done = step.done
    return seq, vec


class TestVecUGVRollout:
    def test_flat_rows_match_sequential_samples_at_k1(self, toy_env):
        horizon = toy_env.config.episode_len  # one full episode
        seq, vec = _collect_both_ugv(toy_env, horizon, seed=11)
        samples = seq.build_samples(GAMMA, LAM, episode=0)
        flat = vec.flat_samples(GAMMA, LAM)
        assert len(flat) == len(samples)
        for i, s in enumerate(samples):
            assert flat.env[i] == 0
            assert flat.agent[i] == s.agent
            assert flat.t[i] == s.t
            assert flat.actions[i] == s.action
            assert flat.log_probs[i] == pytest.approx(s.log_prob)
            assert flat.values[i] == pytest.approx(s.value)
            assert flat.advantages[i] == pytest.approx(s.advantage, rel=1e-12)
            assert flat.returns[i] == pytest.approx(s.ret, rel=1e-12)

    def test_flat_samples_cached(self, toy_env):
        _, vec = _collect_both_ugv(toy_env, toy_env.config.episode_len, seed=2)
        assert vec.flat_samples(GAMMA, LAM) is vec.flat_samples(GAMMA, LAM)

    def test_add_past_horizon_raises(self, toy_env):
        _, vec = _collect_both_ugv(toy_env, toy_env.config.episode_len, seed=3)
        u, b = toy_env.config.num_ugvs, toy_env.num_stops
        buf = UGVObsArrays.allocate((1,), u, b)
        with pytest.raises(IndexError):
            vec.add(buf, np.zeros((1, u), dtype=int), np.zeros((1, u)),
                    np.zeros((1, u)), np.zeros((1, u)),
                    np.ones((1, u), dtype=bool), np.array([False]))


class TestVecUAVRollout:
    def test_flight_segmentation_matches_sequential(self):
        """Synthetic airborne masks: per-flight GAE must equal UAVRollout's
        explicit segments, including flights cut by episode end."""
        rng = np.random.default_rng(7)
        k, horizon, v, s = 1, 14, 2, 6

        class _Obs:
            def __init__(self, grid, aux):
                self.grid, self.aux = grid, aux

        # airborne[t, v]: two flights for UAV 0, one spanning the episode
        # boundary for UAV 1 (cut there by the done flag).
        airborne = np.zeros((horizon, v), dtype=bool)
        airborne[1:4, 0] = True
        airborne[6:9, 0] = True
        airborne[5:10, 1] = True
        dones = np.zeros(horizon, dtype=bool)
        dones[7] = dones[-1] = True  # episode boundary mid-flight of UAV 1

        seq = UAVRollout(num_agents=v)
        vec = VecUAVRollout(k, horizon, v, s)
        obs_buf = UAVObsArrays.allocate((1,), v, s)
        for t in range(horizon):
            grids = rng.random((v, 3, s, s))
            auxs = rng.random((v, 5))
            actions = rng.standard_normal((v, 2))
            log_probs = rng.standard_normal(v)
            values = rng.standard_normal(v)
            rewards = rng.standard_normal(v)
            next_airborne = airborne[t + 1] if t + 1 < horizon else np.zeros(v, bool)
            for vi in range(v):
                if airborne[t, vi]:
                    seq.add(vi, _Obs(grids[vi], auxs[vi]), actions[vi],
                            log_probs[vi], values[vi], rewards[vi])
                    if not next_airborne[vi] or dones[t]:
                        seq.close_flight(vi)
            obs_buf.grid[0] = grids
            obs_buf.aux[0] = auxs
            obs_buf.airborne[0] = airborne[t]
            vec.add(obs_buf, actions[None], log_probs[None], values[None],
                    rewards[None], next_airborne[None], np.array([dones[t]]))

        assert vec.num_transitions == seq.num_transitions
        seq_samples = seq.build_samples(GAMMA, LAM)
        flat = vec.flat_samples(GAMMA, LAM)
        assert len(flat) == len(seq_samples)
        # Sequential emits segment-by-segment; match rows via (action) keys.
        vec_by_key = {tuple(np.round(flat.actions[i], 12)):
                      (flat.advantages[i], flat.returns[i], flat.log_probs[i])
                      for i in range(len(flat))}
        for s_ in seq_samples:
            adv, ret, logp = vec_by_key[tuple(np.round(s_.action, 12))]
            assert adv == pytest.approx(s_.advantage, rel=1e-12)
            assert ret == pytest.approx(s_.ret, rel=1e-12)
            assert logp == pytest.approx(s_.log_prob)

    def test_invalid_gap_does_not_leak_into_flight(self):
        """Values stored in the gap between flights must not affect GAE of
        the preceding flight (the valid->invalid edge is a flight end)."""
        vec = VecUAVRollout(1, 6, 1, 4)
        obs_buf = UAVObsArrays.allocate((1,), 1, 4)
        airborne = [True, True, False, False, True, True]
        for t in range(6):
            obs_buf.airborne[0] = [airborne[t]]
            next_air = np.array([airborne[t + 1]]) if t < 5 else np.array([False])
            # Poison the invalid steps with huge values/rewards.
            poison = 0.0 if airborne[t] else 1e6
            vec.add(obs_buf, np.zeros((1, 1, 2)), np.zeros((1, 1)),
                    np.full((1, 1), 1.0 + poison), np.full((1, 1), 0.5 + poison),
                    next_air[None], np.array([t == 5]))
        flat = vec.flat_samples(GAMMA, LAM)
        assert len(flat) == 4
        # Each flight is two steps of reward 0.5, value 1.0, terminal at end.
        ref_adv, ref_ret = compute_gae(np.array([0.5, 0.5]), np.array([1.0, 1.0]),
                                       np.array([False, True]), GAMMA, LAM)
        np.testing.assert_allclose(flat.advantages.reshape(2, 2),
                                   np.stack([ref_adv, ref_adv]), rtol=1e-12)
        np.testing.assert_allclose(flat.returns.reshape(2, 2),
                                   np.stack([ref_ret, ref_ret]), rtol=1e-12)
