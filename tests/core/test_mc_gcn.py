"""Tests for the MC-GCN module (Section IV-B, Eqns. 18-23)."""

import numpy as np
import pytest

from repro.core import GARLConfig, MCGCN, multi_center_structural_feature
from repro.core.config import PPOConfig


@pytest.fixture()
def config():
    return GARLConfig(hidden_dim=8, mc_gcn_layers=2, structural_q=5.0,
                      ppo=PPOConfig())


class TestStructuralFeature:
    def test_eqn18_subtracts_mean_of_others(self):
        corr = np.array([
            [1.0, 0.5, 0.2],
            [0.5, 1.0, 0.4],
            [0.2, 0.4, 1.0],
        ])
        feature = multi_center_structural_feature(corr, own_stop=0,
                                                  other_stops=np.array([1, 2]))
        expected = corr[0] - (corr[1] + corr[2]) / 2.0
        np.testing.assert_allclose(feature, expected)

    def test_no_other_ugvs_returns_own_row(self):
        corr = np.eye(4)
        feature = multi_center_structural_feature(corr, 2, np.array([], dtype=int))
        np.testing.assert_allclose(feature, corr[2])

    def test_negative_centres_suppress_contested_stops(self):
        # A stop close to another UGV gets a lower value than with no rival.
        corr = np.array([
            [1.0, 0.5],
            [0.5, 1.0],
        ])
        alone = multi_center_structural_feature(corr, 0, np.array([], dtype=int))
        contested = multi_center_structural_feature(corr, 0, np.array([1]))
        assert contested[1] < alone[1]


class TestForward:
    def test_output_shapes(self, toy_stops, config):
        model = MCGCN(toy_stops, config)
        features = np.random.default_rng(0).normal(size=(toy_stops.num_stops, 3))
        nodes, pooled = model(features, own_stop=0, other_stops=np.array([3]))
        assert nodes.shape == (toy_stops.num_stops, config.hidden_dim)
        assert pooled.shape == (config.hidden_dim,)

    def test_pooled_feature_bounded_by_tanh(self, toy_stops, config):
        model = MCGCN(toy_stops, config)
        features = np.random.default_rng(1).normal(size=(toy_stops.num_stops, 3)) * 10
        _, pooled = model(features, 0, np.array([1, 2]))
        assert (np.abs(pooled.numpy()) <= 1.0).all()

    def test_gradients_reach_all_parameters(self, toy_stops, config):
        model = MCGCN(toy_stops, config)
        features = np.random.default_rng(2).normal(size=(toy_stops.num_stops, 3))
        nodes, pooled = model(features, 1, np.array([0]))
        (nodes.sum() + pooled.sum()).backward()
        for name, p in model.named_parameters():
            assert p.grad is not None, f"no gradient for {name}"

    def test_own_position_changes_output(self, toy_stops, config):
        # The multi-center design makes the output depend on where the UGV is.
        model = MCGCN(toy_stops, config)
        features = np.random.default_rng(3).normal(size=(toy_stops.num_stops, 3))
        _, pooled_a = model(features, 0, np.array([5]))
        _, pooled_b = model(features, 10, np.array([5]))
        assert not np.allclose(pooled_a.numpy(), pooled_b.numpy())

    def test_other_ugv_positions_change_output(self, toy_stops, config):
        model = MCGCN(toy_stops, config)
        features = np.random.default_rng(4).normal(size=(toy_stops.num_stops, 3))
        nodes_a, _ = model(features, 0, np.array([1]))
        nodes_b, _ = model(features, 0, np.array([12]))
        assert not np.allclose(nodes_a.numpy(), nodes_b.numpy())

    def test_ablated_plain_gcn_ignores_other_ugvs(self, toy_stops, config):
        plain = MCGCN(toy_stops, config.ablated(mc=False))
        features = np.random.default_rng(5).normal(size=(toy_stops.num_stops, 3))
        nodes_a, _ = plain(features, 0, np.array([1]))
        nodes_b, _ = plain(features, 0, np.array([12]))
        np.testing.assert_allclose(nodes_a.numpy(), nodes_b.numpy())

    def test_layer_count_respected(self, toy_stops):
        for layers in (1, 3, 5):
            cfg = GARLConfig(hidden_dim=4, mc_gcn_layers=layers)
            model = MCGCN(toy_stops, cfg)
            assert len(model.gcn_layers) == layers
            assert len(model.attn_weights) == layers

    def test_deterministic_given_seed(self, toy_stops, config):
        a = MCGCN(toy_stops, config, rng=np.random.default_rng(11))
        b = MCGCN(toy_stops, config, rng=np.random.default_rng(11))
        features = np.random.default_rng(6).normal(size=(toy_stops.num_stops, 3))
        _, pa = a(features, 0, np.array([1]))
        _, pb = b(features, 0, np.array([1]))
        np.testing.assert_array_equal(pa.numpy(), pb.numpy())
