"""Tests for the checkpoint manager."""

import pytest

from repro.core import CheckpointManager, GARLAgent, GARLConfig, PPOConfig


class FakeRecord:
    def __init__(self, iteration, efficiency):
        self.iteration = iteration
        self.metrics = {"efficiency": efficiency}


@pytest.fixture()
def agent(toy_env):
    return GARLAgent(toy_env, GARLConfig(hidden_dim=8, mc_gcn_layers=1,
                                         ecomm_layers=1,
                                         ppo=PPOConfig(epochs=1, minibatch_size=16)))


class TestCheckpointManager:
    def test_validation(self, tmp_path, agent):
        with pytest.raises(ValueError):
            CheckpointManager(tmp_path, agent, every=0)

    def test_best_tracks_maximum(self, tmp_path, agent):
        manager = CheckpointManager(tmp_path, agent, every=100)
        manager(FakeRecord(0, 0.3))
        manager(FakeRecord(1, 0.9))
        manager(FakeRecord(2, 0.5))  # worse: best must stay at iteration 1
        meta = manager.load_best()
        assert meta["iteration"] == 1
        assert meta["value"] == pytest.approx(0.9)

    def test_periodic_pruning(self, tmp_path, agent):
        manager = CheckpointManager(tmp_path, agent, every=1, keep=2)
        for i in range(5):
            manager(FakeRecord(i, 0.1))
        kept = manager.available()
        assert len(kept) == 2
        assert all(path.exists() for path in kept)
        # Oldest were removed from disk.
        assert not (tmp_path / "iter_000000").exists()

    def test_load_best_without_checkpoint(self, tmp_path, agent):
        manager = CheckpointManager(tmp_path, agent, every=10)
        with pytest.raises(FileNotFoundError):
            manager.load_best()

    def test_integration_with_training(self, tmp_path, agent):
        manager = CheckpointManager(tmp_path, agent, every=1, keep=1)
        agent.train(iterations=2, callback=manager)
        assert manager.best_directory.exists()
        meta = manager.load_best()
        assert "value" in meta

    def test_plain_dict_records(self, tmp_path, agent):
        manager = CheckpointManager(tmp_path, agent, every=10)
        manager({"iteration": 0, "metrics": {"efficiency": 0.4}})
        assert manager.best_value == pytest.approx(0.4)
