"""Shared fixtures: miniature campuses and a hand-built toy campus.

The toy campus is fully deterministic (explicit geometry), which the env
tests rely on for precise collision / collection assertions.  The
generated miniatures exercise the real builders.
"""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.env import AirGroundEnv, EnvConfig
from repro.maps import CampusMap, Polygon, build_campus, build_stop_graph, rectangle


def make_toy_campus() -> CampusMap:
    """400x400 m campus: 3x3 road grid, two buildings, four sensors.

    Layout (metres)::

        roads: grid junctions at x,y in {50, 200, 350}
        building A: 60x60 rectangle centred at (125, 125)
        building B: 60x60 rectangle centred at (275, 275)
        sensors: one on each wall midpoint facing a road
    """
    roads = nx.Graph()
    coords = [50.0, 200.0, 350.0]
    for r, y in enumerate(coords):
        for c, x in enumerate(coords):
            roads.add_node((r, c), pos=(x, y))
    for r in range(3):
        for c in range(3):
            if c + 1 < 3:
                roads.add_edge((r, c), (r, c + 1), length=150.0)
            if r + 1 < 3:
                roads.add_edge((r, c), (r + 1, c), length=150.0)
    roads = nx.convert_node_labels_to_integers(roads, ordering="sorted")

    building_a = rectangle(125.0, 125.0, 60.0, 60.0)
    building_b = rectangle(275.0, 275.0, 60.0, 60.0)
    sensors = np.array([
        [95.0, 125.0],   # west wall of A
        [125.0, 95.0],   # south wall of A
        [305.0, 275.0],  # east wall of B
        [275.0, 305.0],  # north wall of B
    ])
    hosts = np.array([0, 0, 1, 1])
    return CampusMap("toy", 400.0, 400.0, roads, [building_a, building_b], sensors, hosts)


@pytest.fixture(scope="session")
def toy_campus() -> CampusMap:
    return make_toy_campus()


@pytest.fixture(scope="session")
def toy_stops(toy_campus):
    return build_stop_graph(toy_campus, interval=75.0)


@pytest.fixture(scope="session")
def mini_kaist() -> CampusMap:
    return build_campus("kaist", scale=0.3)


@pytest.fixture(scope="session")
def mini_ucla() -> CampusMap:
    return build_campus("ucla", scale=0.3)


@pytest.fixture(scope="session")
def kaist_stops(mini_kaist):
    return build_stop_graph(mini_kaist)


@pytest.fixture()
def toy_env(toy_campus, toy_stops) -> AirGroundEnv:
    config = EnvConfig(num_ugvs=2, num_uavs_per_ugv=2, episode_len=12)
    return AirGroundEnv(toy_campus, config, stops=toy_stops, seed=7)


@pytest.fixture()
def kaist_env(mini_kaist, kaist_stops) -> AirGroundEnv:
    config = EnvConfig(num_ugvs=2, num_uavs_per_ugv=1, episode_len=10)
    return AirGroundEnv(mini_kaist, config, stops=kaist_stops, seed=5)
