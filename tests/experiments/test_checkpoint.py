"""Unit tests for the full-training-state checkpoint subsystem."""

import json
import os
import signal

import numpy as np
import pytest

from repro.experiments.checkpoint import (
    RESUME_EXIT_CODE,
    SCHEMA_VERSION,
    CheckpointError,
    GracefulInterrupt,
    TrainingCheckpointer,
    TrainingInterrupted,
    config_fingerprint,
    find_latest,
    flatten_state,
    load_training_checkpoint,
    read_checkpoint,
    read_manifest,
    unflatten_state,
    write_checkpoint,
)


class StubAgent:
    """Minimal agent: a dict-shaped state with one array leaf."""

    def __init__(self):
        self.state = {"iteration": 0,
                      "policy": {"w": np.arange(4.0)},
                      "rng": {"bit_generator": "PCG64"}}
        self.loaded = None

    def state_dict(self):
        return {"iteration": self.state["iteration"],
                "policy": {"w": self.state["policy"]["w"].copy()},
                "rng": dict(self.state["rng"])}

    def load_state_dict(self, state):
        self.loaded = state


class StubRecord:
    def __init__(self, iteration, efficiency=0.0):
        self.iteration = iteration
        self.metrics = {"efficiency": efficiency}
        self.losses = {}


# ----------------------------------------------------------------------
# flatten / unflatten
# ----------------------------------------------------------------------

def test_flatten_round_trip_preserves_tree_and_arrays():
    state = {
        "iteration": 7,
        "nested": {"w": np.arange(6.0).reshape(2, 3),
                   "scalars": {"lr": 1e-3, "t": np.int64(42)}},
        "streams": [{"s": np.array([1, 2])}, {"s": np.array([3, 4])}],
        "flag": np.bool_(True),
    }
    arrays, jsonable = flatten_state(state)
    # The mirror must be genuinely JSON-able (numpy scalars coerced).
    restored = unflatten_state(json.loads(json.dumps(jsonable)), arrays)
    assert restored["iteration"] == 7
    assert restored["nested"]["scalars"] == {"lr": 1e-3, "t": 42}
    assert restored["flag"] is True
    np.testing.assert_array_equal(restored["nested"]["w"], state["nested"]["w"])
    np.testing.assert_array_equal(restored["streams"][1]["s"], np.array([3, 4]))
    assert "nested/w" in arrays and "streams/0/s" in arrays


def test_flatten_rejects_non_string_keys():
    with pytest.raises(TypeError, match="strings"):
        flatten_state({3: np.zeros(2)})


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------

def test_config_fingerprint_is_order_insensitive_and_config_sensitive():
    base = config_fingerprint({"a": 1, "b": 2}, {"lr": 3e-4})
    assert base == config_fingerprint({"b": 2, "a": 1}, {"lr": 3e-4})
    assert base != config_fingerprint({"a": 1, "b": 2}, {"lr": 1e-3})
    assert base != config_fingerprint({"a": 1, "b": 3}, {"lr": 3e-4})


def test_config_fingerprint_handles_dataclasses():
    from repro.core.config import GARLConfig

    a = config_fingerprint(GARLConfig())
    b = config_fingerprint(GARLConfig().replace(hidden_dim=8))
    assert a != b
    assert a == config_fingerprint(GARLConfig())


# ----------------------------------------------------------------------
# write / read one checkpoint directory
# ----------------------------------------------------------------------

def test_write_read_checkpoint_round_trip(tmp_path):
    state = {"it": 3, "w": np.linspace(0, 1, 5)}
    path = write_checkpoint(tmp_path / "iter_000003", state,
                            {"iterations_completed": 3})
    loaded, manifest = read_checkpoint(path)
    assert manifest["schema_version"] == SCHEMA_VERSION
    assert manifest["iterations_completed"] == 3
    assert "repro" in manifest["code_hashes"]
    assert loaded["it"] == 3
    np.testing.assert_array_equal(loaded["w"], state["w"])


def test_write_checkpoint_overwrites_atomically(tmp_path):
    target = tmp_path / "iter_000001"
    write_checkpoint(target, {"v": np.array([1.0])}, {})
    write_checkpoint(target, {"v": np.array([2.0])}, {})
    loaded, _ = read_checkpoint(target)
    np.testing.assert_array_equal(loaded["v"], [2.0])
    # No staging or .old residue survives a successful save.
    assert sorted(p.name for p in tmp_path.iterdir()) == ["iter_000001"]


def test_read_manifest_rejects_wrong_schema(tmp_path):
    path = write_checkpoint(tmp_path / "iter_000001", {}, {})
    manifest = json.loads((path / "manifest.json").read_text())
    manifest["schema_version"] = SCHEMA_VERSION + 1
    (path / "manifest.json").write_text(json.dumps(manifest))
    with pytest.raises(CheckpointError, match="schema version"):
        read_manifest(path)


def test_read_manifest_requires_manifest(tmp_path):
    (tmp_path / "iter_000001").mkdir()
    with pytest.raises(CheckpointError, match="manifest"):
        read_manifest(tmp_path / "iter_000001")


def test_load_training_checkpoint_rejects_fingerprint_mismatch(tmp_path):
    agent = StubAgent()
    write_checkpoint(tmp_path / "iter_000002", agent.state_dict(),
                     {"config_fingerprint": "aaaa", "iterations_completed": 2})
    with pytest.raises(CheckpointError, match="fingerprint"):
        load_training_checkpoint(tmp_path / "iter_000002", agent,
                                 expect_fingerprint="bbbb")
    assert agent.loaded is None  # nothing moved before validation


def test_load_training_checkpoint_loads_on_match(tmp_path):
    agent = StubAgent()
    write_checkpoint(tmp_path / "iter_000002", agent.state_dict(),
                     {"config_fingerprint": "aaaa", "iterations_completed": 2})
    manifest = load_training_checkpoint(tmp_path / "iter_000002", agent,
                                        expect_fingerprint="aaaa")
    assert manifest["iterations_completed"] == 2
    np.testing.assert_array_equal(agent.loaded["policy"]["w"], np.arange(4.0))


def test_load_training_checkpoint_warns_on_code_drift(tmp_path, capsys):
    agent = StubAgent()
    path = write_checkpoint(tmp_path / "iter_000001", agent.state_dict(), {})
    manifest = json.loads((path / "manifest.json").read_text())
    manifest["code_hashes"] = {"repro": "0" * 16}
    (path / "manifest.json").write_text(json.dumps(manifest))
    load_training_checkpoint(path, agent)
    assert "different" in capsys.readouterr().err


# ----------------------------------------------------------------------
# latest pointer / find_latest
# ----------------------------------------------------------------------

def test_find_latest_follows_pointer_and_falls_back(tmp_path):
    write_checkpoint(tmp_path / "iter_000002", {}, {})
    write_checkpoint(tmp_path / "iter_000010", {}, {})
    # No pointer: numeric fallback picks the highest iteration.
    assert find_latest(tmp_path).name == "iter_000010"
    (tmp_path / "latest").write_text("iter_000002\n")
    assert find_latest(tmp_path).name == "iter_000002"
    # Dangling pointer: fall back again rather than fail.
    (tmp_path / "latest").write_text("iter_999999\n")
    assert find_latest(tmp_path).name == "iter_000010"


def test_find_latest_raises_when_empty(tmp_path):
    with pytest.raises(CheckpointError, match="no resumable checkpoint"):
        find_latest(tmp_path)


# ----------------------------------------------------------------------
# TrainingCheckpointer: cadence, retention, interrupts
# ----------------------------------------------------------------------

def test_checkpointer_saves_on_cadence_and_final(tmp_path):
    ckpt = TrainingCheckpointer(tmp_path, StubAgent(), total_iterations=5,
                                save_every=2, keep_last=10)
    for it in range(5):
        ckpt(StubRecord(it))
    names = sorted(p.name for p in ckpt.available())
    # Iterations 2, 4 (cadence) and 5 (final) → completed counts.
    assert names == ["iter_000002", "iter_000004", "iter_000005"]
    assert (tmp_path / "latest").read_text().strip() == "iter_000005"


def test_checkpointer_retention_keeps_best_and_latest(tmp_path):
    ckpt = TrainingCheckpointer(tmp_path, StubAgent(), total_iterations=100,
                                save_every=1, keep_last=2)
    efficiencies = [0.1, 0.9, 0.2, 0.3, 0.4]  # best lands early, at iter 2
    for it, eff in enumerate(efficiencies):
        ckpt(StubRecord(it, efficiency=eff))
    names = sorted(p.name for p in ckpt.available())
    # Best (iter_000002) survives beyond keep_last; last two periodic kept.
    assert names == ["iter_000002", "iter_000004", "iter_000005"]
    assert ckpt.best_path.name == "iter_000002"
    assert ckpt.best_value == pytest.approx(0.9)


def test_checkpointer_rescan_adopts_existing_run(tmp_path):
    first = TrainingCheckpointer(tmp_path, StubAgent(), total_iterations=100,
                                 save_every=1, keep_last=5)
    for it, eff in enumerate([0.5, 0.8, 0.1]):
        first(StubRecord(it, efficiency=eff))
    resumed = TrainingCheckpointer(tmp_path, StubAgent(), total_iterations=100,
                                   save_every=1, keep_last=5)
    assert resumed.best_path.name == "iter_000002"
    assert resumed.best_value == pytest.approx(0.8)
    assert resumed.last_saved.name == "iter_000003"


def test_checkpointer_records_telemetry_cursor(tmp_path):
    class FakeTelemetry:
        count = 7

    ckpt = TrainingCheckpointer(tmp_path, StubAgent(), total_iterations=10,
                                save_every=1, telemetry=FakeTelemetry())
    ckpt(StubRecord(0))
    assert read_manifest(ckpt.last_saved)["telemetry_cursor"] == 7


def test_checkpointer_interrupt_saves_off_cadence_and_raises(tmp_path):
    interrupt = GracefulInterrupt()
    interrupt.triggered = "SIGTERM"  # as if a signal already arrived
    ckpt = TrainingCheckpointer(tmp_path, StubAgent(), total_iterations=100,
                                save_every=50, interrupt=interrupt)
    with pytest.raises(TrainingInterrupted) as excinfo:
        ckpt(StubRecord(2))  # iteration 2 → 3 completed, not on cadence
    err = excinfo.value
    assert err.iterations_completed == 3
    assert err.signal_name == "SIGTERM"
    assert err.checkpoint_path.name == "iter_000003"
    assert (err.checkpoint_path / "manifest.json").exists()


def test_checkpointer_validates_arguments(tmp_path):
    with pytest.raises(ValueError):
        TrainingCheckpointer(tmp_path, StubAgent(), total_iterations=5,
                             save_every=0)
    with pytest.raises(ValueError):
        TrainingCheckpointer(tmp_path, StubAgent(), total_iterations=5,
                             keep_last=0)


# ----------------------------------------------------------------------
# GracefulInterrupt
# ----------------------------------------------------------------------

def test_graceful_interrupt_catches_real_sigterm():
    with GracefulInterrupt() as interrupt:
        assert interrupt.triggered is None
        os.kill(os.getpid(), signal.SIGTERM)
        assert interrupt.triggered == "SIGTERM"
        # Second signal escalates to an immediate KeyboardInterrupt.
        with pytest.raises(KeyboardInterrupt):
            os.kill(os.getpid(), signal.SIGTERM)
    # Handlers restored on exit: the default SIGTERM disposition is back.
    assert signal.getsignal(signal.SIGTERM) is signal.SIG_DFL


def test_resume_exit_code_is_ex_tempfail():
    assert RESUME_EXIT_CODE == 75
