"""CLI tests (fast paths only; heavy experiment paths are benchmarks)."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments import ScalePreset
from repro.experiments.presets import PRESETS


@pytest.fixture(autouse=True)
def tiny_preset(monkeypatch):
    """Swap the 'smoke' preset for a seconds-scale one during CLI tests."""
    tiny = ScalePreset("smoke", campus_scale=0.25, episode_len=6,
                       train_iterations=1, episodes_per_iteration=1,
                       eval_episodes=1, hidden_dim=8, ppo_epochs=1,
                       minibatch_size=16)
    monkeypatch.setitem(PRESETS, "smoke", tiny)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_args(self):
        args = build_parser().parse_args(["train", "garl", "--campus", "ucla",
                                          "--ugvs", "6"])
        assert args.method == "garl"
        assert args.campus == "ucla"
        assert args.ugvs == 6

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "alphago"])


class TestCommands:
    def test_train_prints_metrics(self, capsys):
        assert main(["train", "random", "--ugvs", "2", "--uavs", "1"]) == 0
        out = capsys.readouterr().out
        assert "λ=" in out and "random on kaist" in out

    def test_train_save_and_evaluate(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        assert main(["train", "gat", "--ugvs", "2", "--uavs", "1",
                     "--iterations", "1", "--save", str(ckpt)]) == 0
        assert (ckpt / "ugv_policy.npz").exists()
        assert main(["evaluate", "gat", str(ckpt), "--ugvs", "2",
                     "--uavs", "1", "--episodes", "1"]) == 0
        assert "λ=" in capsys.readouterr().out

    def test_complexity_command(self, capsys):
        assert main(["complexity", "--methods", "gat", "random"]) == 0
        out = capsys.readouterr().out
        assert "ms/step" in out

    def test_sweep_writes_records(self, tmp_path, capsys):
        out_file = tmp_path / "records.json"
        assert main(["sweep", "--methods", "random", "--ugv-counts", "2",
                     "--uav-counts", "1", "--out", str(out_file)]) == 0
        data = json.loads(out_file.read_text())
        assert data and data[0]["method"] == "random"


class TestRenderCommand:
    def test_render_campus_only(self, tmp_path, capsys):
        out = tmp_path / "campus.svg"
        assert main(["render", "--campus", "kaist", "--out", str(out)]) == 0
        assert out.exists()
        assert out.read_text().startswith("<svg")

    def test_render_with_method_trace(self, tmp_path):
        out = tmp_path / "trace.svg"
        assert main(["render", "--campus", "kaist", "--method", "random",
                     "--out", str(out)]) == 0
        svg = out.read_text()
        assert "<polyline" in svg


class TestMethodSeed:
    def test_distinct_methods_get_distinct_seeds(self):
        from repro.experiments import method_seed

        seeds = {method_seed(m, 0) for m in ("garl", "gat", "dgn", "random")}
        assert len(seeds) == 4

    def test_deterministic(self):
        from repro.experiments import method_seed

        assert method_seed("garl", 3) == method_seed("garl", 3)


class TestCheckpointFlags:
    def test_parser_accepts_checkpoint_options(self):
        args = build_parser().parse_args(
            ["train", "garl", "--checkpoint-dir", "/tmp/run",
             "--save-every", "5", "--keep-last", "2", "--resume", "latest"])
        assert args.checkpoint_dir == "/tmp/run"
        assert args.save_every == 5
        assert args.keep_last == 2
        assert args.resume == "latest"

    def test_checkpoint_defaults(self):
        args = build_parser().parse_args(["train", "garl"])
        assert args.checkpoint_dir is None
        assert args.save_every == 10
        assert args.keep_last == 3
        assert args.resume is None

    def test_train_writes_checkpoints_and_telemetry(self, tmp_path, capsys):
        run_dir = tmp_path / "run"
        code = main(["train", "garl", "--iterations", "2",
                     "--ugvs", "2", "--uavs", "1",
                     "--checkpoint-dir", str(run_dir), "--save-every", "1"])
        assert code == 0
        assert (run_dir / "train.jsonl").exists()
        assert (run_dir / "latest").exists()
        latest = run_dir / (run_dir / "latest").read_text().strip()
        assert (latest / "manifest.json").exists()

    def test_resume_without_checkpoint_dir_fails(self):
        with pytest.raises(ValueError, match="resume"):
            main(["train", "random", "--iterations", "1", "--resume", "latest"])
