"""CLI tests (fast paths only; heavy experiment paths are benchmarks)."""

import json

import pytest

from repro.cli import build_parser, main
from repro.experiments import ScalePreset
from repro.experiments.presets import PRESETS


@pytest.fixture(autouse=True)
def tiny_preset(monkeypatch):
    """Swap the 'smoke' preset for a seconds-scale one during CLI tests."""
    tiny = ScalePreset("smoke", campus_scale=0.25, episode_len=6,
                       train_iterations=1, episodes_per_iteration=1,
                       eval_episodes=1, hidden_dim=8, ppo_epochs=1,
                       minibatch_size=16)
    monkeypatch.setitem(PRESETS, "smoke", tiny)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_train_args(self):
        args = build_parser().parse_args(["train", "garl", "--campus", "ucla",
                                          "--ugvs", "6"])
        assert args.method == "garl"
        assert args.campus == "ucla"
        assert args.ugvs == 6

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["train", "alphago"])


class TestCommands:
    def test_train_prints_metrics(self, capsys):
        assert main(["train", "random", "--ugvs", "2", "--uavs", "1"]) == 0
        out = capsys.readouterr().out
        assert "λ=" in out and "random on kaist" in out

    def test_train_save_and_evaluate(self, tmp_path, capsys):
        ckpt = tmp_path / "ckpt"
        assert main(["train", "gat", "--ugvs", "2", "--uavs", "1",
                     "--iterations", "1", "--save", str(ckpt)]) == 0
        assert (ckpt / "ugv_policy.npz").exists()
        assert main(["evaluate", "gat", str(ckpt), "--ugvs", "2",
                     "--uavs", "1", "--episodes", "1"]) == 0
        assert "λ=" in capsys.readouterr().out

    def test_complexity_command(self, capsys):
        assert main(["complexity", "--methods", "gat", "random"]) == 0
        out = capsys.readouterr().out
        assert "ms/step" in out

    def test_sweep_writes_records(self, tmp_path, capsys):
        out_file = tmp_path / "records.json"
        assert main(["sweep", "--methods", "random", "--ugv-counts", "2",
                     "--uav-counts", "1", "--out", str(out_file)]) == 0
        data = json.loads(out_file.read_text())
        assert data and data[0]["method"] == "random"


class TestRenderCommand:
    def test_render_campus_only(self, tmp_path, capsys):
        out = tmp_path / "campus.svg"
        assert main(["render", "--campus", "kaist", "--out", str(out)]) == 0
        assert out.exists()
        assert out.read_text().startswith("<svg")

    def test_render_with_method_trace(self, tmp_path):
        out = tmp_path / "trace.svg"
        assert main(["render", "--campus", "kaist", "--method", "random",
                     "--out", str(out)]) == 0
        svg = out.read_text()
        assert "<polyline" in svg


class TestMethodSeed:
    def test_distinct_methods_get_distinct_seeds(self):
        from repro.experiments import method_seed

        seeds = {method_seed(m, 0) for m in ("garl", "gat", "dgn", "random")}
        assert len(seeds) == 4

    def test_deterministic(self):
        from repro.experiments import method_seed

        assert method_seed("garl", 3) == method_seed("garl", 3)
