"""Same-seed training is byte-reproducible end to end.

Two independent ``run_training`` invocations with identical
configuration must emit bit-identical ``train.jsonl`` telemetry — the
end-to-end contract the determinism analyzer certifies incrementally.
Checked sequentially and with four env replicas.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import run_training


def _train(tmp_path, tag: str, num_envs: int):
    out = tmp_path / tag
    record, _ = run_training("garl", "kaist", preset="smoke", num_ugvs=2,
                             num_uavs_per_ugv=1, seed=7, train_iterations=2,
                             num_envs=num_envs, checkpoint_dir=out,
                             handle_signals=False)
    return record, (out / "train.jsonl").read_bytes()


@pytest.mark.parametrize("num_envs", [1, 4])
def test_same_seed_runs_produce_identical_telemetry(tmp_path, num_envs):
    record_a, log_a = _train(tmp_path, f"a{num_envs}", num_envs)
    record_b, log_b = _train(tmp_path, f"b{num_envs}", num_envs)
    assert log_a  # telemetry actually written
    assert log_a == log_b
    assert record_a.metrics == record_b.metrics
