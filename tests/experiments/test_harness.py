"""Tests for the experiments harness: presets, records, runner, tables."""

import numpy as np
import pytest

from repro.experiments import (
    PRESETS,
    ResultRecord,
    ScalePreset,
    coalition_series,
    format_ablation,
    format_coalition_series,
    format_complexity,
    format_layer_sweep,
    format_trajectory_stats,
    get_campus,
    get_preset,
    load_records,
    run_method,
    save_records,
    trajectory_statistics,
)
from repro.experiments.paper_values import TABLE2, TABLE3, TABLE4


TINY = ScalePreset("tiny", campus_scale=0.25, episode_len=8,
                   train_iterations=1, episodes_per_iteration=1,
                   eval_episodes=1, hidden_dim=8, ppo_epochs=1,
                   minibatch_size=16)


class TestPresets:
    def test_known_presets(self):
        assert set(PRESETS) == {"smoke", "small", "paper"}
        assert get_preset("smoke").campus_scale == 0.3

    def test_unknown_preset(self):
        with pytest.raises(KeyError):
            get_preset("galactic")

    def test_env_config_generation(self):
        cfg = get_preset("smoke").env_config(num_ugvs=6, num_uavs_per_ugv=3)
        assert cfg.num_ugvs == 6 and cfg.num_uavs_per_ugv == 3
        assert cfg.episode_len == get_preset("smoke").episode_len

    def test_garl_config_overrides(self):
        cfg = get_preset("smoke").garl_config(mc_gcn_layers=5)
        assert cfg.mc_gcn_layers == 5
        assert cfg.hidden_dim == get_preset("smoke").hidden_dim

    def test_paper_preset_matches_section5(self):
        paper = get_preset("paper")
        assert paper.campus_scale == 1.0
        assert paper.episode_len == 100  # T = 100 timeslots


class TestRecords:
    def test_round_trip(self, tmp_path):
        records = [
            ResultRecord("garl", "kaist", 4, 2,
                         {"efficiency": 0.9, "psi": 0.5, "xi": 0.6, "zeta": 0.7, "beta": 0.3},
                         extra={"sweep": {"axis": "ugvs", "value": 4}}),
        ]
        path = save_records(records, tmp_path / "out" / "results.json")
        loaded = load_records(path)
        assert loaded[0].method == "garl"
        assert loaded[0].efficiency == 0.9
        assert loaded[0].extra["sweep"]["value"] == 4


class TestRunner:
    def test_campus_cache_returns_same_objects(self):
        a = get_campus("kaist", 0.25)
        b = get_campus("kaist", 0.25)
        assert a[0] is b[0] and a[1] is b[1]

    def test_run_method_record_schema(self):
        record = run_method("random", "kaist", TINY, num_ugvs=2,
                            num_uavs_per_ugv=1, seed=0)
        assert record.method == "random"
        assert record.campus == "kaist"
        assert set(record.metrics) == {"psi", "xi", "zeta", "beta", "efficiency"}
        assert record.extra["train_seconds"] >= 0.0

    def test_run_method_trains_learned_agent(self):
        record = run_method("gat", "kaist", TINY, num_ugvs=2,
                            num_uavs_per_ugv=1, seed=0)
        assert np.isfinite(record.efficiency)


class TestTrajectoryStatistics:
    def _trace(self, env, positions_per_step):
        return [{"t": t, "ugv_positions": np.asarray(p),
                 "uav_positions": np.zeros((env.config.num_uavs, 2)),
                 "uav_airborne": np.zeros(env.config.num_uavs, dtype=bool)}
                for t, p in enumerate(positions_per_step)]

    def test_stationary_trace(self, toy_env):
        toy_env.reset()
        pos = np.array([g.position for g in toy_env.ugvs])
        stats = trajectory_statistics(self._trace(toy_env, [pos, pos, pos]), toy_env)
        assert stats["ugv_travel_metres"] == 0.0
        assert stats["stops_visited"] >= 1
        # Both UGVs at the same stop -> full overlap.
        assert stats["overlap"] == pytest.approx(1.0)

    def test_split_ugvs_have_no_overlap(self, toy_env):
        toy_env.reset()
        p1 = toy_env.stops.positions[0]
        p2 = toy_env.stops.positions[-1]
        trace = self._trace(toy_env, [np.stack([p1, p2])])
        stats = trajectory_statistics(trace, toy_env)
        assert stats["overlap"] == 0.0
        assert stats["stops_visited"] == 2

    def test_travel_accumulates(self, toy_env):
        toy_env.reset()
        a = np.zeros((2, 2))
        b = np.array([[3.0, 4.0], [0.0, 0.0]])
        stats = trajectory_statistics(self._trace(toy_env, [a, b]), toy_env)
        assert stats["ugv_travel_metres"] == pytest.approx(5.0)


class TestFormatting:
    def _records(self):
        metrics = {"efficiency": 0.5, "psi": 0.4, "xi": 0.3, "zeta": 0.6, "beta": 0.2}
        recs = []
        for layers in (1, 2, 3):
            r = ResultRecord("garl", "kaist", 4, 2, dict(metrics))
            r.extra["sweep"] = {"which": "mc", "layers": layers}
            recs.append(r)
        return recs

    def test_layer_sweep_table(self):
        text = format_layer_sweep(self._records(), which="mc")
        assert "LMC=1" in text
        assert "λ" in text and "β" in text

    def test_ablation_table(self):
        metrics = {"efficiency": 0.5, "psi": 0.4, "xi": 0.3, "zeta": 0.6, "beta": 0.2}
        recs = [ResultRecord(m, "kaist", 4, 2, dict(metrics))
                for m in ("garl", "garl_wo_mc")]
        text = format_ablation(recs)
        assert "GARL w/o MC" in text

    def test_coalition_series_and_format(self):
        metrics = {"efficiency": 0.5, "psi": 0.4, "xi": 0.3, "zeta": 0.6, "beta": 0.2}
        recs = []
        for u in (2, 4):
            r = ResultRecord("garl", "kaist", u, 2, dict(metrics))
            r.extra["sweep"] = {"axis": "ugvs", "value": u}
            recs.append(r)
        series = coalition_series(recs, "ugvs")
        assert series["garl"] == [(2, 0.5), (4, 0.5)]
        text = format_coalition_series(recs, "ugvs")
        assert "U=2" in text and "U=4" in text

    def test_complexity_table(self):
        rows = [{"method": "garl", "campus": "kaist", "ms_per_step": 1.23,
                 "parameters": 4567}]
        text = format_complexity(rows)
        assert "GARL" in text and "4567" in text

    def test_trajectory_stats_table(self):
        stats = {"garl": {"stats": {"coverage": 0.8, "overlap": 0.1,
                                    "ugv_travel_metres": 1234.5, "stops_visited": 20}}}
        text = format_trajectory_stats(stats)
        assert "GARL" in text and "0.800" in text


class TestPaperValues:
    def test_table3_orderings_as_published(self):
        for campus in ("kaist", "ucla"):
            rows = TABLE3[campus]
            assert rows["garl"]["efficiency"] > rows["garl_wo_e"]["efficiency"]
            assert rows["garl_wo_e"]["efficiency"] > rows["garl_wo_mc"]["efficiency"]
            assert rows["garl_wo_mc"]["efficiency"] > rows["garl_wo_mc_e"]["efficiency"]

    def test_table2_peaks_at_three_layers(self):
        for which in ("mc", "e"):
            series = TABLE2["kaist"][which]
            assert max(series, key=series.get) == 3

    def test_table4_contains_all_baselines(self):
        assert set(TABLE4) == {"garl", "gam", "gat", "cubicmap", "aecomm",
                               "dgn", "ic3net", "maddpg"}
