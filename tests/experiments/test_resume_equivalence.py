"""resume ≡ uninterrupted: kill-at-every-iteration equivalence tests.

These run the *real* interruption machinery end-to-end: a genuine
SIGTERM is delivered to the process at a chosen iteration boundary,
:class:`GracefulInterrupt` converts it into a save-and-raise, and a
second :func:`run_training` call resumes from the checkpoint.  For every
possible kill point of the smoke preset — sequential and K=4 vectorized
collection — the resumed run's telemetry must be byte-identical to the
uninterrupted control's, and the final evaluation must agree exactly.
"""

import os
import signal

import pytest

import repro.experiments.runner as runner_module
from repro.experiments import TrainingInterrupted, get_preset, run_training
from repro.experiments.telemetry import TrainingLogger

SMOKE = get_preset("smoke")
ITERATIONS = SMOKE.train_iterations  # 3: kill points are 1 .. ITERATIONS-1

# Smallest coalition keeps each smoke iteration fast; all checkpointed
# state paths (vec replicas included) are still exercised.
RUN_KWARGS = dict(num_ugvs=2, num_uavs_per_ugv=1, seed=0)


class _KillAfter(TrainingLogger):
    """TrainingLogger that SIGTERMs the process after record ``kill_at``.

    The signal lands inside the training callback chain — exactly where
    a real operator's Ctrl-C would — so the checkpointer's
    graceful-interrupt path (finish iteration, save, raise) runs for
    real rather than being simulated.
    """

    kill_at: int | None = None

    def __call__(self, record) -> None:
        super().__call__(record)
        if self.kill_at is not None and self.count == self.kill_at:
            os.kill(os.getpid(), signal.SIGTERM)


def _run(tmp_path, name, *, num_envs, resume=None, kill_at=None, monkeypatch=None):
    """One run_training invocation against ``tmp_path/name``."""
    if kill_at is not None:
        assert monkeypatch is not None
        logger = type("KillLogger", (_KillAfter,), {"kill_at": kill_at})
        monkeypatch.setattr(runner_module, "TrainingLogger", logger)
    try:
        return run_training("garl", "kaist", SMOKE, num_envs=num_envs,
                            checkpoint_dir=tmp_path / name, save_every=1,
                            resume=resume, **RUN_KWARGS)
    finally:
        if kill_at is not None:
            monkeypatch.setattr(runner_module, "TrainingLogger", TrainingLogger)


def _telemetry_bytes(tmp_path, name) -> bytes:
    return (tmp_path / name / "train.jsonl").read_bytes()


@pytest.fixture(scope="module")
def control(tmp_path_factory):
    """One uninterrupted smoke run per collection mode (the reference)."""
    tmp = tmp_path_factory.mktemp("control")
    out = {}
    for num_envs in (1, 4):
        record, _ = _run(tmp, f"seq{num_envs}", num_envs=num_envs)
        out[num_envs] = (record, _telemetry_bytes(tmp, f"seq{num_envs}"))
    return out


@pytest.mark.parametrize("num_envs", [1, 4],
                         ids=["sequential", "vectorized-k4"])
@pytest.mark.parametrize("kill_at", range(1, ITERATIONS))
def test_kill_at_every_iteration_resumes_bit_for_bit(
        tmp_path, monkeypatch, control, num_envs, kill_at):
    name = f"killed_{num_envs}_{kill_at}"

    with pytest.raises(TrainingInterrupted) as excinfo:
        _run(tmp_path, name, num_envs=num_envs, kill_at=kill_at,
             monkeypatch=monkeypatch)
    interrupted = excinfo.value
    assert interrupted.iterations_completed == kill_at
    assert interrupted.signal_name == "SIGTERM"
    assert interrupted.checkpoint_path.exists()
    # The interrupted run logged exactly the iterations it completed.
    partial = _telemetry_bytes(tmp_path, name)
    control_record, control_bytes = control[num_envs]
    assert control_bytes.startswith(partial)
    assert partial != control_bytes

    record, _ = _run(tmp_path, name, num_envs=num_envs, resume="latest")

    assert _telemetry_bytes(tmp_path, name) == control_bytes
    assert record.metrics == control_record.metrics
    assert record.extra["resumed_from_iteration"] == kill_at


@pytest.mark.parametrize("num_envs", [1, 4],
                         ids=["sequential", "vectorized-k4"])
def test_resume_after_completion_is_a_no_op_with_identical_eval(
        tmp_path, control, num_envs):
    """Resuming a finished run trains zero iterations, evaluates the same."""
    name = f"done_{num_envs}"
    _run(tmp_path, name, num_envs=num_envs)
    control_record, control_bytes = control[num_envs]
    record, _ = _run(tmp_path, name, num_envs=num_envs, resume="latest")
    assert record.extra["resumed_from_iteration"] == ITERATIONS
    assert record.metrics == control_record.metrics
    assert _telemetry_bytes(tmp_path, name) == control_bytes


def test_resume_under_different_config_is_refused(tmp_path):
    from repro.experiments import CheckpointError

    _run(tmp_path, "fp", num_envs=1)
    with pytest.raises(CheckpointError, match="fingerprint"):
        run_training("garl", "kaist", SMOKE, num_envs=1,
                     checkpoint_dir=tmp_path / "fp", save_every=1,
                     resume="latest", num_ugvs=2, num_uavs_per_ugv=1,
                     seed=1)  # different seed → different fingerprint
