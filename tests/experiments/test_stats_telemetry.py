"""Tests for multi-seed statistics and training telemetry."""

import numpy as np
import pytest

from repro.experiments import (
    MovingAverage,
    ResultRecord,
    TrainingLogger,
    aggregate_records,
    bootstrap_ci,
    read_jsonl_log,
)


def make_record(eff: float, seed: int = 0, method: str = "garl") -> ResultRecord:
    return ResultRecord(method, "kaist", 4, 2,
                        {"efficiency": eff, "psi": eff / 2, "xi": 0.5,
                         "zeta": 0.5, "beta": 0.25},
                        seed=seed)


class TestBootstrapCI:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_bad_confidence_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)

    def test_single_value_degenerate(self):
        assert bootstrap_ci([3.0]) == (3.0, 3.0)

    def test_contains_true_mean_for_tight_sample(self):
        rng = np.random.default_rng(0)
        values = rng.normal(10.0, 0.5, size=50)
        low, high = bootstrap_ci(values)
        assert low <= values.mean() <= high
        assert high - low < 1.0

    def test_wider_for_noisier_samples(self):
        rng = np.random.default_rng(1)
        tight = bootstrap_ci(rng.normal(0, 0.1, 40))
        loose = bootstrap_ci(rng.normal(0, 5.0, 40))
        assert (loose[1] - loose[0]) > (tight[1] - tight[0])

    def test_deterministic_given_seed(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert bootstrap_ci(values, seed=7) == bootstrap_ci(values, seed=7)


class TestAggregateRecords:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_records([])

    def test_mixed_configurations_rejected(self):
        a = make_record(0.5)
        b = make_record(0.6, method="gat")
        with pytest.raises(ValueError):
            aggregate_records([a, b])

    def test_mean_and_std(self):
        records = [make_record(e, seed=i) for i, e in enumerate([0.4, 0.6, 0.5])]
        agg = aggregate_records(records)
        assert agg["efficiency"].mean == pytest.approx(0.5)
        assert agg["efficiency"].n == 3
        assert agg["efficiency"].ci_low <= 0.5 <= agg["efficiency"].ci_high
        assert "±" in str(agg["efficiency"])

    def test_all_metrics_present(self):
        agg = aggregate_records([make_record(0.5), make_record(0.7, seed=1)])
        assert set(agg) == {"efficiency", "psi", "xi", "zeta", "beta"}


class TestMovingAverage:
    def test_window_validation(self):
        with pytest.raises(ValueError):
            MovingAverage(0)

    def test_empty_value_zero(self):
        assert MovingAverage(3).value == 0.0

    def test_average_within_window(self):
        ma = MovingAverage(3)
        ma.update(1.0)
        ma.update(2.0)
        assert ma.value == pytest.approx(1.5)

    def test_window_slides(self):
        ma = MovingAverage(2)
        for v in (1.0, 2.0, 10.0):
            ma.update(v)
        assert ma.value == pytest.approx(6.0)
        assert len(ma) == 2

    def test_matches_numpy_reference(self):
        rng = np.random.default_rng(0)
        values = rng.normal(size=100)
        ma = MovingAverage(7)
        for i, v in enumerate(values):
            got = ma.update(v)
            want = values[max(0, i - 6):i + 1].mean()
            assert got == pytest.approx(want)


class TestTrainingLogger:
    def test_logs_train_records(self, tmp_path, toy_env):
        from repro.core import GARLAgent, GARLConfig, PPOConfig

        logger = TrainingLogger(tmp_path / "log.jsonl", tmp_path / "log.csv")
        agent = GARLAgent(toy_env, GARLConfig(hidden_dim=8, mc_gcn_layers=1,
                                              ecomm_layers=1,
                                              ppo=PPOConfig(epochs=1, minibatch_size=16)))
        agent.train(iterations=2, callback=logger)
        entries = read_jsonl_log(tmp_path / "log.jsonl")
        assert len(entries) == 2
        assert entries[0]["iteration"] == 0
        assert "metric_efficiency" in entries[0]
        assert "loss_ugv_policy_loss" in entries[0]
        assert (tmp_path / "log.csv").read_text().count("\n") == 3  # header + 2 rows

    def test_logs_plain_dicts(self, tmp_path):
        logger = TrainingLogger(tmp_path / "log.jsonl")
        logger({"iteration": 0, "metrics": {"efficiency": 0.5}, "losses": {}})
        logger({"iteration": 1, "metrics": {"efficiency": 0.7}, "losses": {}})
        assert logger.smoothed("efficiency") == pytest.approx(0.6)

    def test_smoothed_unknown_metric(self, tmp_path):
        logger = TrainingLogger(tmp_path / "log.jsonl")
        with pytest.raises(KeyError):
            logger.smoothed("nope")


class TestNonFiniteValues:
    """NaN/±inf metric values are recorded as JSON null, warning once."""

    def test_nan_and_inf_become_null(self, tmp_path):
        logger = TrainingLogger(tmp_path / "log.jsonl")
        with pytest.warns(RuntimeWarning, match="non-finite"):
            logger({"iteration": 0,
                    "metrics": {"efficiency": float("nan"),
                                "psi": float("inf"), "xi": 0.5},
                    "losses": {}})
        entries = read_jsonl_log(tmp_path / "log.jsonl")
        assert entries[0]["metric_efficiency"] is None
        assert entries[0]["metric_psi"] is None
        assert entries[0]["metric_xi"] == 0.5
        # The file must be strict JSON (no bare NaN/Infinity tokens).
        import json

        for line in (tmp_path / "log.jsonl").read_text().splitlines():
            json.loads(line)

    def test_warns_only_once(self, tmp_path):
        import warnings

        logger = TrainingLogger(tmp_path / "log.jsonl")
        with pytest.warns(RuntimeWarning):
            logger({"iteration": 0, "metrics": {"a": float("nan")},
                    "losses": {}})
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            logger({"iteration": 1, "metrics": {"a": float("nan")},
                    "losses": {}})
        entries = read_jsonl_log(tmp_path / "log.jsonl")
        assert [e["metric_a"] for e in entries] == [None, None]

    def test_finite_payloads_untouched(self, tmp_path):
        # The all-finite fast path returns the payload object unchanged,
        # keeping telemetry bytes identical to pre-fix logs (the
        # resume ≡ uninterrupted machinery depends on byte equality).
        logger = TrainingLogger(tmp_path / "log.jsonl")
        payload = {"iteration": 0, "metric_a": 0.5}
        assert logger._drop_nonfinite(payload) is payload

    def test_nonfinite_skipped_by_moving_average(self, tmp_path):
        logger = TrainingLogger(tmp_path / "log.jsonl")
        with pytest.warns(RuntimeWarning):
            logger({"iteration": 0,
                    "metrics": {"a": 1.0, "b": float("nan")}, "losses": {}})
        assert logger.smoothed("a") == 1.0
        with pytest.raises(KeyError):
            logger.smoothed("b")  # null is not folded into averages


class TestRunMethodSeeds:
    def test_integration_tiny(self):
        from repro.experiments import ScalePreset, run_method_seeds

        tiny = ScalePreset("tiny", campus_scale=0.25, episode_len=6,
                           train_iterations=1, episodes_per_iteration=1,
                           eval_episodes=1, hidden_dim=8, ppo_epochs=1,
                           minibatch_size=16)
        records, agg = run_method_seeds("random", "kaist", tiny, seeds=(0, 1),
                                        num_ugvs=2, num_uavs_per_ugv=1)
        assert len(records) == 2
        assert {r.seed for r in records} == {0, 1}
        assert agg["psi"].n == 2
