#!/usr/bin/env python
"""Docstring coverage checker for the repro public API.

Walks the modules named in ``PUBLIC_MODULES``, collects every public
object (module itself, public classes, their public methods, public
functions — name not starting with ``_``, defined in that module), and
fails if any lacks a docstring.  Run from the repo root:

    PYTHONPATH=src python scripts/check_docstrings.py

Dunder methods, inherited members and private names are exempt.
Docstring inheritance counts: an override without its own docstring is
fine when a base-class method documents the contract
(``inspect.getdoc`` follows the MRO), which is the convention the
layer/optimizer hierarchies use.
"""

from __future__ import annotations

import importlib
import inspect
import sys

# The supported public surface: what README/docs tell users to import.
PUBLIC_MODULES = (
    "repro.nn.tensor",
    "repro.nn.layers",
    "repro.nn.graph",
    "repro.nn.optim",
    "repro.nn.functional",
    "repro.nn.tracer",
    "repro.core.garl",
    "repro.core.ippo",
    "repro.core.policies",
    "repro.env.airground",
    "repro.env.vector",
    "repro.experiments.runner",
    "repro.experiments.checkpoint",
    "repro.experiments.telemetry",
    "repro.obs.scope",
    "repro.obs.metrics",
    "repro.obs.opprof",
    "repro.obs.export",
    "repro.serve.artifact",
    "repro.serve.engine",
    "repro.serve.service",
    "repro.serve.loadgen",
)


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def _check_callable(obj, qualname: str, missing: list[str]) -> None:
    if not (obj.__doc__ or "").strip():
        missing.append(qualname)


def check_module(modname: str) -> list[str]:
    module = importlib.import_module(modname)
    missing: list[str] = []
    if not (module.__doc__ or "").strip():
        missing.append(modname)
    for name, obj in vars(module).items():
        if not _is_public(name):
            continue
        if getattr(obj, "__module__", None) != modname:
            continue  # re-export; checked where it is defined
        if inspect.isclass(obj):
            _check_callable(obj, f"{modname}.{name}", missing)
            for mname, member in vars(obj).items():
                if not _is_public(mname):
                    continue
                if isinstance(member, property):
                    if not (inspect.getdoc(member) or "").strip():
                        missing.append(f"{modname}.{name}.{mname}")
                elif inspect.isfunction(member) or isinstance(
                        member, (staticmethod, classmethod)):
                    # getdoc on the class attribute resolves inherited
                    # docstrings through the MRO (doc-inheritance rule).
                    if not (inspect.getdoc(getattr(obj, mname)) or "").strip():
                        missing.append(f"{modname}.{name}.{mname}")
        elif inspect.isfunction(obj):
            _check_callable(obj, f"{modname}.{name}", missing)
    return missing


def main() -> int:
    total = 0
    missing_all: list[str] = []
    for modname in PUBLIC_MODULES:
        try:
            missing_all.extend(check_module(modname))
        except ImportError as exc:
            missing_all.append(f"{modname} (import failed: {exc})")
        total += 1
    if missing_all:
        print(f"{len(missing_all)} public objects lack docstrings:")
        for qualname in missing_all:
            print(f"  - {qualname}")
        return 1
    print(f"docstring coverage ok: all public objects across "
          f"{total} modules documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
