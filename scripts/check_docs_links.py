#!/usr/bin/env python
"""Markdown link validator + docs/index.md reachability check.

Two invariants over the repo's documentation:

1. every relative markdown link (``[text](path)``, including ``#anchor``
   targets within the same file) in README.md, DESIGN.md, ROADMAP.md and
   ``docs/**/*.md`` resolves to an existing file;
2. every file under ``docs/`` is reachable from ``docs/index.md`` by
   following links (no orphaned documentation).

External links (``http(s)://``, ``mailto:``) are not fetched.  Run from
the repo root:

    python scripts/check_docs_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
ROOTS = ("README.md", "DESIGN.md", "ROADMAP.md", "PAPER.md")

# [text](target) — excluding images' leading "!" is unnecessary: image
# targets must exist too.
_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _doc_files() -> list[Path]:
    files = [REPO_ROOT / name for name in ROOTS
             if (REPO_ROOT / name).exists()]
    files.extend(sorted((REPO_ROOT / "docs").rglob("*.md")))
    return files


def _targets(path: Path) -> list[str]:
    return _LINK_RE.findall(path.read_text(encoding="utf-8"))


def check_links(files: list[Path]) -> list[str]:
    """Return 'file: broken-target' strings for unresolvable links."""
    broken: list[str] = []
    for path in files:
        for target in _targets(path):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):
                continue  # intra-file anchor; heading drift not checked
            rel = target.split("#", 1)[0]
            if not rel:
                continue
            resolved = (path.parent / rel).resolve()
            if not resolved.exists():
                broken.append(f"{path.relative_to(REPO_ROOT)}: {target}")
    return broken


def check_reachability() -> list[str]:
    """Return docs/ files not reachable by links from docs/index.md."""
    index = REPO_ROOT / "docs" / "index.md"
    if not index.exists():
        return ["docs/index.md does not exist"]
    seen: set[Path] = set()
    frontier = [index]
    while frontier:
        path = frontier.pop()
        if path in seen or not path.exists():
            continue
        seen.add(path)
        if path.suffix != ".md":
            continue
        for target in _targets(path):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            rel = target.split("#", 1)[0]
            if rel:
                frontier.append((path.parent / rel).resolve())
    orphans = []
    for path in sorted((REPO_ROOT / "docs").rglob("*.md")):
        if path.resolve() not in seen:
            orphans.append(str(path.relative_to(REPO_ROOT)))
    return orphans


def main() -> int:
    files = _doc_files()
    broken = check_links(files)
    orphans = check_reachability()
    status = 0
    if broken:
        print(f"{len(broken)} broken markdown links:")
        for item in broken:
            print(f"  - {item}")
        status = 1
    if orphans:
        print(f"{len(orphans)} docs not reachable from docs/index.md:")
        for item in orphans:
            print(f"  - {item}")
        status = 1
    if status == 0:
        print(f"docs ok: {len(files)} files, all links resolve, "
              f"all docs reachable from docs/index.md")
    return status


if __name__ == "__main__":
    sys.exit(main())
