#!/usr/bin/env python3
"""Render the campus and a trained coalition's trajectories to SVG.

Produces three artifacts in ``--out-dir``:

* ``<campus>.svg`` — roads, buildings, sensors, stop graph (Fig. 1 style)
* ``<campus>_<method>_trace.svg`` — UGV paths + UAV flight dots (Fig. 7 style)
* a terminal ASCII heatmap of the remaining sensor data after the episode

Run with::

    python examples/visualize_coalition.py [--method garl] [--campus kaist]
"""

from __future__ import annotations

import argparse
from pathlib import Path

import numpy as np

from repro import make_agent
from repro.experiments import get_preset
from repro.experiments.runner import build_env, method_seed
from repro.viz import ascii_heatmap, render_campus, render_trajectories


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--method", default="garl")
    parser.add_argument("--campus", default="kaist", choices=["kaist", "ucla"])
    parser.add_argument("--preset", default="smoke", choices=["smoke", "small", "paper"])
    parser.add_argument("--out-dir", default="viz_output")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    preset = get_preset(args.preset)
    out_dir = Path(args.out_dir)
    env = build_env(args.campus, preset, num_ugvs=4, num_uavs_per_ugv=2,
                    seed=args.seed)
    env.reset()

    campus_svg = render_campus(env.campus, stops=env.stops)
    path = campus_svg.save(out_dir / f"{args.campus}.svg")
    print(f"campus map  -> {path}")

    agent = make_agent(args.method, env, preset.garl_config().replace(
        seed=method_seed(args.method, args.seed)))
    print(f"training {args.method} for {preset.train_iterations} iterations ...")
    agent.train(preset.train_iterations, preset.episodes_per_iteration)
    trace = agent.rollout_trace(greedy=False, seed=args.seed)

    trace_svg = render_trajectories(env, trace,
                                    title=f"{args.method} on {args.campus}")
    path = trace_svg.save(out_dir / f"{args.campus}_{args.method}_trace.svg")
    print(f"trajectory  -> {path}")

    # Remaining-data heatmap after the traced episode.
    builder = env.builder
    data = np.zeros_like(builder.obstacles)
    remaining = np.array([s.remaining for s in env.sensors])
    np.add.at(data, (builder.sensor_cells[:, 1], builder.sensor_cells[:, 0]), remaining)
    print("\nremaining sensor data (north at top; denser = more left behind):")
    print(ascii_heatmap(data, width=60))
    print(f"\nmetrics: {env.metrics()}")


if __name__ == "__main__":
    main()
