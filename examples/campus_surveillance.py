#!/usr/bin/env python3
"""Daily-surveillance scenario (paper intro): compare methods on KAIST.

A UGV-UAV coalition patrols the campus collecting CCTV/sensor data.  The
script trains GARL and two representative baselines on the same miniature
KAIST environment and prints the paper's five metrics side by side.

Run with::

    python examples/campus_surveillance.py [--methods garl gat random]
"""

from __future__ import annotations

import argparse

from repro import METHOD_LABELS
from repro.experiments import get_preset, run_method


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--methods", nargs="+", default=["garl", "gat", "random"],
                        help="registry names of the methods to compare")
    parser.add_argument("--preset", default="smoke", choices=["smoke", "small", "paper"])
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    preset = get_preset(args.preset)
    print(f"KAIST daily surveillance — preset '{preset.name}' "
          f"(campus x{preset.campus_scale}, T={preset.episode_len}, "
          f"{preset.train_iterations} training iterations)\n")

    header = f"{'method':16s}  {'λ':>7s}  {'ψ':>7s}  {'ξ':>7s}  {'ζ':>7s}  {'β':>7s}"
    print(header)
    print("-" * len(header))
    for method in args.methods:
        record = run_method(method, "kaist", preset, num_ugvs=4,
                            num_uavs_per_ugv=2, seed=args.seed)
        m = record.metrics
        print(f"{METHOD_LABELS.get(method, method):16s}  {m['efficiency']:7.4f}"
              f"  {m['psi']:7.4f}  {m['xi']:7.4f}  {m['zeta']:7.4f}  {m['beta']:7.4f}"
              f"   ({record.extra['train_seconds']:.0f}s train)")


if __name__ == "__main__":
    main()
