#!/usr/bin/env python3
"""Table III walkthrough: ablate MC-GCN and E-Comm out of GARL.

Runs the four Table III variants at smoke scale on one campus and prints
the same rows the paper reports, so you can watch the component ordering
(GARL > w/o E > w/o MC > w/o both) emerge.

Run with::

    python examples/ablation_walkthrough.py [--campus kaist|ucla]
"""

from __future__ import annotations

import argparse

from repro.experiments import TABLE3, ablation_study, format_ablation, get_preset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--campus", default="kaist", choices=["kaist", "ucla"])
    parser.add_argument("--preset", default="smoke", choices=["smoke", "small", "paper"])
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    preset = get_preset(args.preset)
    print(f"Ablation study on {args.campus.upper()} (preset '{preset.name}', "
          f"U=4, V'=2)\n")
    records = ablation_study(args.campus, preset, seed=args.seed)
    print("measured:")
    print(format_ablation(records))

    print("\npaper (Table III):")
    header = f"{'method':16s}  {'λ':>7s}  {'ψ':>7s}  {'ξ':>7s}  {'ζ':>7s}  {'β':>7s}"
    print(header)
    labels = {"garl": "GARL", "garl_wo_mc": "GARL w/o MC",
              "garl_wo_e": "GARL w/o E", "garl_wo_mc_e": "GARL w/o MC, E"}
    for method, row in TABLE3[args.campus].items():
        print(f"{labels[method]:16s}  {row['efficiency']:7.4f}  {row['psi']:7.4f}"
              f"  {row['xi']:7.4f}  {row['zeta']:7.4f}  {row['beta']:7.4f}")


if __name__ == "__main__":
    main()
