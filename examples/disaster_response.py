#!/usr/bin/env python3
"""Disaster-response scenario (paper intro) on UCLA with uneven data.

A "damage zone" in the campus's west half makes its sensors hold 4x the
data of the rest — exactly the uneven distribution E-Comm is designed
for, since UGV formations that *look* the same must behave differently
depending on where the data is.  The script trains GARL, evaluates it,
and prints trajectory statistics showing the coalition splitting the
workzone.

Run with::

    python examples/disaster_response.py [--iterations N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import AirGroundEnv, EnvConfig, GARLAgent, GARLConfig, build_campus
from repro.experiments import trajectory_statistics


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=6)
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    campus = build_campus("ucla", scale=args.scale)
    # The west half is the disaster zone: 4x the sensory data to collect.
    west = campus.sensor_positions[:, 0] < campus.width / 2.0
    weights = np.where(west, 4.0, 1.0)
    print(f"UCLA disaster response: {int(west.sum())}/{campus.num_sensors} "
          f"sensors in the west damage zone hold 4x data")

    env = AirGroundEnv(campus,
                       EnvConfig(num_ugvs=4, num_uavs_per_ugv=2, episode_len=40),
                       seed=args.seed, data_weights=weights)
    agent = GARLAgent(env, GARLConfig(hidden_dim=16, seed=args.seed))

    print(f"Training GARL for {args.iterations} iterations ...")
    agent.train(args.iterations)

    snapshot = agent.evaluate(episodes=3, greedy=False)
    print(f"\nMetrics: {snapshot}")

    trace = agent.rollout_trace(greedy=False, seed=args.seed)
    stats = trajectory_statistics(trace, env)
    print("\nTrajectory statistics (one episode):")
    print(f"  stop coverage        {stats['coverage']:.3f}")
    print(f"  inter-UGV overlap    {stats['overlap']:.3f}  (lower = better split)")
    print(f"  total UGV travel     {stats['ugv_travel_metres']:.0f} m")

    # How much of the collected data came out of the damage zone?
    remaining = np.array([s.remaining for s in env.sensors])
    initial = np.array([s.initial_data for s in env.sensors])
    west_share = float((initial[west] - remaining[west]).sum()
                       / max((initial - remaining).sum(), 1e-9))
    print(f"  share collected from damage zone: {west_share:.2%}")


if __name__ == "__main__":
    main()
