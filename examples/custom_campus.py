#!/usr/bin/env python3
"""Build a custom campus, persist it to JSON, and run a coalition on it.

Demonstrates the scenario-authoring path: ``random_campus`` (or your own
OSM-converted JSON in the same schema) -> ``save_campus``/``load_campus``
-> simulate -> compare a learned agent with the greedy planner.

Run with::

    python examples/custom_campus.py [--buildings 12] [--sensors 20]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro import AirGroundEnv, EnvConfig, GARLAgent, GARLConfig
from repro.baselines import GreedyAgent
from repro.maps import build_stop_graph, load_campus, random_campus, save_campus


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--buildings", type=int, default=10)
    parser.add_argument("--sensors", type=int, default=16)
    parser.add_argument("--width", type=float, default=700.0)
    parser.add_argument("--style", choices=["grid", "irregular"], default="irregular")
    parser.add_argument("--iterations", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    campus = random_campus("custom-demo", width=args.width, height=args.width,
                           buildings=args.buildings, sensors=args.sensors,
                           seed=args.seed, road_style=args.style)
    print(f"generated campus: {campus.num_buildings} buildings, "
          f"{campus.num_sensors} sensors, "
          f"{campus.roads.number_of_edges()} road segments")

    # Round-trip through the JSON schema (the same path an OSM extract
    # converted to this schema would take).
    with tempfile.TemporaryDirectory() as tmp:
        path = save_campus(campus, Path(tmp) / "campus.json")
        campus = load_campus(path)
        print(f"round-tripped through {path.name}")

    stops = build_stop_graph(campus)
    config = EnvConfig(num_ugvs=3, num_uavs_per_ugv=2, episode_len=30)

    env = AirGroundEnv(campus, config, stops=stops, seed=args.seed)
    greedy = GreedyAgent(env, seed=args.seed)
    greedy_snap = greedy.evaluate(episodes=3)
    print(f"\ngreedy planner : {greedy_snap}")

    env = AirGroundEnv(campus, config, stops=stops, seed=args.seed)
    agent = GARLAgent(env, GARLConfig(hidden_dim=16, seed=args.seed))
    print(f"training GARL for {args.iterations} iterations ...")
    agent.train(args.iterations)
    garl_snap = agent.evaluate(episodes=3, greedy=False)
    print(f"GARL           : {garl_snap}")

    print("\n(The greedy planner exploits myopically; with enough training "
          "iterations GARL overtakes it on fairness and efficiency.)")


if __name__ == "__main__":
    main()
