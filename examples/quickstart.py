#!/usr/bin/env python3
"""Quickstart: train GARL on a miniature KAIST campus and print metrics.

Run with::

    python examples/quickstart.py [--iterations N] [--scale S]

Takes ~1 minute at the defaults on a laptop CPU.
"""

from __future__ import annotations

import argparse

from repro import AirGroundEnv, EnvConfig, GARLAgent, GARLConfig, build_campus


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--iterations", type=int, default=8,
                        help="training iterations (Algorithm 1's M)")
    parser.add_argument("--scale", type=float, default=0.3,
                        help="campus miniaturisation factor in (0, 1]")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    print(f"Building KAIST campus at scale {args.scale} ...")
    campus = build_campus("kaist", scale=args.scale)
    env = AirGroundEnv(campus,
                       EnvConfig(num_ugvs=4, num_uavs_per_ugv=2, episode_len=40),
                       seed=args.seed)
    print(f"  {campus.num_buildings} buildings, {campus.num_sensors} sensors, "
          f"{env.num_stops} UGV stops")

    agent = GARLAgent(env, GARLConfig(hidden_dim=16, seed=args.seed))
    print(f"Training GARL for {args.iterations} iterations ...")

    def progress(record) -> None:
        m = record.metrics
        print(f"  iter {record.iteration:2d}: λ={m['efficiency']:.4f} "
              f"ψ={m['psi']:.4f} ξ={m['xi']:.4f} ζ={m['zeta']:.4f} β={m['beta']:.4f}")

    agent.train(args.iterations, callback=progress)

    snapshot = agent.evaluate(episodes=3, greedy=False)
    print("\nEvaluation over 3 episodes:")
    print(f"  {snapshot}")


if __name__ == "__main__":
    main()
