"""Measure the runtime-sanitizer overhead on a real GARL training loop.

Runs 50 UGV optimizer steps (minibatch loss -> zero_grad -> backward ->
clip -> step, exactly the body of ``IPPOTrainer.update_ugv``) three ways:

* ``baseline``       — sanitizer off (the default production path);
* ``sanitizer_off``  — a second off run, to show run-to-run noise;
* ``sanitizer_on``   — ``detect_anomaly()`` active, full provenance +
                       fingerprint + finiteness checks.

Also times one ``repro lint src`` pass.  Results land in
``BENCH_lint.json`` at the repo root:

    PYTHONPATH=src python benchmarks/sanitizer_overhead.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.garl import GARLAgent
from repro.experiments import get_preset
from repro.experiments.runner import build_env
from repro.nn import clip_grad_norm, detect_anomaly

REPO_ROOT = Path(__file__).resolve().parents[1]
STEPS = 50


def build_trainer():
    preset = get_preset("smoke")
    env = build_env("kaist", preset, num_ugvs=4, num_uavs_per_ugv=2, seed=0)
    agent = GARLAgent(env, preset.garl_config())
    trainer = agent.trainer
    ugv_samples, _, _, _, _ = trainer.collect(episodes=1)
    return trainer, ugv_samples


def run_steps(trainer, samples, steps: int, sanitize: bool) -> dict:
    ppo = trainer.ppo
    advantages = np.array([s.advantage for s in samples])
    norm_adv = (advantages - advantages.mean()) / (advantages.std() + 1e-8)
    order = np.arange(len(samples))
    rng = np.random.default_rng(0)

    per_step = []
    with detect_anomaly(sanitize):
        for step in range(steps):
            if step * ppo.minibatch_size % max(len(order), 1) == 0:
                rng.shuffle(order)
            start = (step * ppo.minibatch_size) % max(len(order), 1)
            batch_idx = order[start:start + ppo.minibatch_size]
            if batch_idx.size == 0:
                batch_idx = order
            t0 = time.perf_counter()
            loss, _, _ = trainer._ugv_minibatch_loss(samples, batch_idx, norm_adv)
            trainer.ugv_optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(trainer.ugv_optimizer.params, ppo.max_grad_norm)
            trainer.ugv_optimizer.step()
            per_step.append(time.perf_counter() - t0)
    arr = np.asarray(per_step)
    return {
        "steps": steps,
        "total_seconds": round(float(arr.sum()), 4),
        "mean_ms": round(float(arr.mean() * 1e3), 3),
        "median_ms": round(float(np.median(arr) * 1e3), 3),
        "p90_ms": round(float(np.percentile(arr, 90) * 1e3), 3),
    }


def time_lint() -> dict:
    from repro.analysis.lint import lint_paths

    t0 = time.perf_counter()
    diagnostics = lint_paths([str(REPO_ROOT / "src")])
    seconds = time.perf_counter() - t0
    n_files = sum(1 for _ in (REPO_ROOT / "src").rglob("*.py"))
    return {
        "seconds": round(seconds, 4),
        "files": n_files,
        "findings": len(diagnostics),
    }


def main() -> None:
    trainer, samples = build_trainer()
    run_steps(trainer, samples, 5, sanitize=False)  # warm up caches/JIT-free path

    baseline = run_steps(trainer, samples, STEPS, sanitize=False)
    off_again = run_steps(trainer, samples, STEPS, sanitize=False)
    on = run_steps(trainer, samples, STEPS, sanitize=True)

    noise = abs(off_again["mean_ms"] - baseline["mean_ms"])
    overhead_off = off_again["mean_ms"] / baseline["mean_ms"]
    overhead_on = on["mean_ms"] / baseline["mean_ms"]

    report = {
        "bench": "sanitizer_overhead",
        "workload": f"{STEPS} UGV PPO minibatch steps, GARL smoke preset, "
                    f"kaist, 4 UGVs x 2 UAVs, {len(samples)} samples",
        "baseline": baseline,
        "sanitizer_off": off_again,
        "sanitizer_on": on,
        "overhead": {
            "off_vs_baseline_x": round(overhead_off, 3),
            "on_vs_baseline_x": round(overhead_on, 3),
            "run_to_run_noise_ms": round(noise, 3),
        },
        "lint_src": time_lint(),
    }
    out = REPO_ROOT / "BENCH_lint.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {out}")


if __name__ == "__main__":
    main()
