"""Shared benchmark configuration.

Benchmarks regenerate every table and figure of the paper's Section V at
*bench scale* — miniature campuses and short training budgets so the full
set completes in minutes on one CPU.  Absolute numbers therefore differ
from the paper; the benches compare *shapes* (orderings, trends) against
the published reference values and write both to ``benchmarks/output/``.

Scale knobs: set ``REPRO_BENCH_PRESET=smoke|small|paper`` to raise
fidelity.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments import ScalePreset, get_preset

OUTPUT_DIR = Path(__file__).parent / "output"

# Bench scale: small enough that all eight bench modules finish quickly.
BENCH = ScalePreset("bench", campus_scale=0.25, episode_len=20,
                    train_iterations=4, episodes_per_iteration=1,
                    eval_episodes=3, hidden_dim=8, ppo_epochs=1,
                    minibatch_size=32)

# Representative method subset for the expensive sweep figures
# (full nine-method sweeps are a preset switch away).
SWEEP_METHODS = ("garl", "gat", "aecomm", "maddpg", "random")


@pytest.fixture(scope="session")
def preset() -> ScalePreset:
    name = os.environ.get("REPRO_BENCH_PRESET")
    return get_preset(name) if name else BENCH


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


# Figs. 3-6 share one coalition sweep; it is computed once per session
# (inside the first benchmark that asks for it) and reused by the rest.
_COALITION_CACHE: dict[str, list] = {}

UGV_COUNTS = (2, 4, 6)
UAV_COUNTS = (1, 2, 3)


def get_coalition_records(preset: ScalePreset) -> dict[str, list]:
    if not _COALITION_CACHE:
        from repro.experiments import coalition_sweep

        for campus in ("kaist", "ucla"):
            _COALITION_CACHE[campus] = coalition_sweep(
                campus, SWEEP_METHODS, ugv_counts=UGV_COUNTS,
                uav_counts=UAV_COUNTS, preset=preset, seed=0)
    return _COALITION_CACHE


def write_report(output_dir: Path, name: str, text: str) -> None:
    (output_dir / f"{name}.txt").write_text(text + "\n")
    print(f"\n{'=' * 72}\n{name}\n{'=' * 72}\n{text}")
