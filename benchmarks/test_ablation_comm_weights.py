"""Extra ablation (DESIGN.md §5): E-Comm's inverse-distance softmax
weights (Eqn. 26) vs a uniform neighbour mean (CommNet-style).

The paper argues the geometric weighting is what lets cooperation adapt
to formation changes; this bench trains both variants identically and
reports the five metrics side by side.
"""

import numpy as np

from repro.experiments import get_preset, run_method

from benchmarks.conftest import write_report


def test_ablation_comm_weights(benchmark, preset, output_dir):
    results = {}

    def run():
        for label, overrides in (("inverse-distance", {}),
                                 ("uniform-mean", {"ecomm_uniform_weights": True})):
            config = preset.garl_config(**overrides)
            results[label] = run_method("garl", "kaist", preset, num_ugvs=4,
                                        num_uavs_per_ugv=2, seed=0,
                                        garl_config=config)
        return results

    benchmark.pedantic(run, iterations=1, rounds=1)

    lines = ["Ablation — E-Comm aggregation weights (KAIST, U=4, V'=2)", ""]
    header = f"{'variant':18s}  {'λ':>7s}  {'ψ':>7s}  {'ξ':>7s}  {'ζ':>7s}  {'β':>7s}"
    lines.append(header)
    for label, record in results.items():
        m = record.metrics
        lines.append(f"{label:18s}  {m['efficiency']:7.4f}  {m['psi']:7.4f}"
                     f"  {m['xi']:7.4f}  {m['zeta']:7.4f}  {m['beta']:7.4f}")
    lines.append("")
    lines.append("paper claim: inverse-distance weighting should win at scale.")

    for record in results.values():
        assert np.isfinite(record.efficiency)

    write_report(output_dir, "ablation_comm_weights", "\n".join(lines))
