"""Table III: ablation of MC-GCN (MC) and E-Comm (E) on both campuses.

Paper shape: GARL > GARL w/o E > GARL w/o MC > GARL w/o MC,E on
efficiency, in both campuses.
"""

import numpy as np

from repro.experiments import ablation_study, format_ablation
from repro.experiments.paper_values import TABLE3

from benchmarks.conftest import write_report

_ORDER = ("garl", "garl_wo_e", "garl_wo_mc", "garl_wo_mc_e")


def test_table3_ablation(benchmark, preset, output_dir):
    results = {}

    def run():
        for campus in ("kaist", "ucla"):
            results[campus] = ablation_study(campus, preset=preset, seed=0)
        return results

    benchmark.pedantic(run, iterations=1, rounds=1)

    lines = ["Table III — ablation study (U=4, V'=2), bench scale", ""]
    for campus in ("kaist", "ucla"):
        lines.append(f"--- {campus.upper()} (measured) ---")
        lines.append(format_ablation(results[campus]))
        lines.append(f"--- {campus.upper()} (paper) ---")
        for method, row in TABLE3[campus].items():
            lines.append(f"{method:16s}  λ={row['efficiency']:.4f}")
        measured = {r.method: r.efficiency for r in results[campus]}
        ordering = sorted(measured, key=measured.get, reverse=True)
        expected_top = ordering[0] == "garl"
        mark = "✓" if expected_top else "✗ (GARL should lead at paper scale)"
        lines.append(f"measured ordering: {' > '.join(ordering)} {mark}")
        lines.append("")

    for campus, records in results.items():
        for record in records:
            assert np.isfinite(record.efficiency)

    write_report(output_dir, "table3_ablation", "\n".join(lines))
