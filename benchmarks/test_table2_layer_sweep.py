"""Table II: impact of the number of MC-GCN and E-Comm layers.

Paper shape: efficiency peaks at 3 layers on both axes (too few layers =
small receptive field / little cooperation; too many = over-smoothing /
redundant messages).
"""

import numpy as np

from repro.experiments import format_layer_sweep, layer_sweep
from repro.experiments.paper_values import TABLE2

from benchmarks.conftest import write_report

LAYERS = (1, 3, 5)  # bench subset of the paper's 1..5


def test_table2_layer_sweep(benchmark, preset, output_dir):
    results = {}

    def run():
        for which in ("mc", "e"):
            results[which] = layer_sweep("kaist", which=which, layers=LAYERS,
                                         preset=preset, seed=0)
        return results

    benchmark.pedantic(run, iterations=1, rounds=1)

    lines = ["Table II — layer sweep on KAIST (U=4, V'=2), bench scale", ""]
    for which in ("mc", "e"):
        lines.append(f"--- L^{which.upper()} sweep (measured) ---")
        lines.append(format_layer_sweep(results[which], which))
        paper_row = TABLE2["kaist"][which]
        lines.append("paper λ row: " + "  ".join(
            f"L={k}:{v:.4f}" for k, v in sorted(paper_row.items())))
        measured = {r.extra["sweep"]["layers"]: r.efficiency for r in results[which]}
        best = max(measured, key=measured.get)
        mark = "✓" if best == 3 else "✗ (expected 3 at paper scale)"
        lines.append(f"measured peak at L={best} {mark}")
        lines.append("")

    # Hard invariants only: every cell is a valid metric value.
    for which in ("mc", "e"):
        for record in results[which]:
            assert np.isfinite(record.efficiency)
            assert 0.0 <= record.metrics["psi"] <= 1.0

    write_report(output_dir, "table2_layer_sweep", "\n".join(lines))
