"""Measure the tape-tracer overhead on a real GARL training loop.

The tracer hook in ``Tensor._make_child`` is a single module-global
check when no ``trace()`` context is active, so the disabled path must
be free.  Runs 50 UGV optimizer steps (the body of
``IPPOTrainer.update_ugv``) four ways:

* ``baseline``          — tracing off (the default production path);
* ``tracing_off``       — a second off run, to show run-to-run noise;
* ``tracing_on``        — every step inside ``trace()``, full site
                          provenance (``sys._getframe`` walk per op);
* ``tracing_no_sites``  — ``trace(site_provenance=False)``, record ops
                          and edges but skip the stack walk.

Also times one full ``repro graphcheck`` pass over GARL (env build +
two traced steps per policy + all five passes).  Results land in
``BENCH_graphcheck.json`` at the repo root:

    PYTHONPATH=src python benchmarks/graphcheck_overhead.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.garl import GARLAgent
from repro.experiments import get_preset
from repro.experiments.runner import build_env
from repro.nn import clip_grad_norm
from repro.nn.tracer import trace

REPO_ROOT = Path(__file__).resolve().parents[1]
STEPS = 50


def build_trainer():
    preset = get_preset("smoke")
    env = build_env("kaist", preset, num_ugvs=4, num_uavs_per_ugv=2, seed=0)
    agent = GARLAgent(env, preset.garl_config())
    trainer = agent.trainer
    ugv_samples, _, _, _, _ = trainer.collect(episodes=1)
    return trainer, ugv_samples


def run_steps(trainer, samples, steps: int, tracing: str) -> dict:
    ppo = trainer.ppo
    advantages = np.array([s.advantage for s in samples])
    norm_adv = (advantages - advantages.mean()) / (advantages.std() + 1e-8)
    order = np.arange(len(samples))
    rng = np.random.default_rng(0)

    per_step = []
    for step in range(steps):
        if step * ppo.minibatch_size % max(len(order), 1) == 0:
            rng.shuffle(order)
        start = (step * ppo.minibatch_size) % max(len(order), 1)
        batch_idx = order[start:start + ppo.minibatch_size]
        if batch_idx.size == 0:
            batch_idx = order

        def one_step():
            loss, _, _ = trainer._ugv_minibatch_loss(samples, batch_idx, norm_adv)
            trainer.ugv_optimizer.zero_grad()
            loss.backward()
            clip_grad_norm(trainer.ugv_optimizer.params, ppo.max_grad_norm)
            trainer.ugv_optimizer.step()

        t0 = time.perf_counter()
        if tracing == "off":
            one_step()
        elif tracing == "on":
            with trace():
                one_step()
        else:  # no_sites
            with trace(site_provenance=False):
                one_step()
        per_step.append(time.perf_counter() - t0)
    arr = np.asarray(per_step)
    return {
        "steps": steps,
        "total_seconds": round(float(arr.sum()), 4),
        "mean_ms": round(float(arr.mean() * 1e3), 3),
        "median_ms": round(float(np.median(arr) * 1e3), 3),
        "p90_ms": round(float(np.percentile(arr, 90) * 1e3), 3),
    }


def time_graphcheck() -> dict:
    from repro.analysis.graphcheck.runner import check_method

    t0 = time.perf_counter()
    report = check_method("garl", num_ugvs=3, num_uavs_per_ugv=1)
    seconds = time.perf_counter() - t0
    return {
        "seconds": round(seconds, 4),
        "nodes": {part: len(ir) for part, ir in report.irs.items()},
        "findings": len(report.diagnostics),
    }


def main() -> None:
    trainer, samples = build_trainer()
    run_steps(trainer, samples, 5, tracing="off")  # warm up

    baseline = run_steps(trainer, samples, STEPS, tracing="off")
    off_again = run_steps(trainer, samples, STEPS, tracing="off")
    on = run_steps(trainer, samples, STEPS, tracing="on")
    no_sites = run_steps(trainer, samples, STEPS, tracing="no_sites")

    noise = abs(off_again["mean_ms"] - baseline["mean_ms"])
    report = {
        "bench": "graphcheck_overhead",
        "workload": f"{STEPS} UGV PPO minibatch steps, GARL smoke preset, "
                    f"kaist, 4 UGVs x 2 UAVs, {len(samples)} samples",
        "baseline": baseline,
        "tracing_off": off_again,
        "tracing_on": on,
        "tracing_no_sites": no_sites,
        "overhead": {
            "off_vs_baseline_x": round(off_again["mean_ms"] / baseline["mean_ms"], 3),
            "on_vs_baseline_x": round(on["mean_ms"] / baseline["mean_ms"], 3),
            "no_sites_vs_baseline_x": round(
                no_sites["mean_ms"] / baseline["mean_ms"], 3),
            "run_to_run_noise_ms": round(noise, 3),
        },
        "graphcheck_garl": time_graphcheck(),
    }
    out = REPO_ROOT / "BENCH_graphcheck.json"
    out.write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    print(f"\nwritten to {out}")


if __name__ == "__main__":
    main()
