"""Time the perfcheck analyzer itself: does a full run fit the CI budget?

``repro perfcheck`` is a gate in CI, so the analyzer's own runtime is a
cost every push pays.  This benchmark times the three components
separately and the combined run:

* ``static``   — hot-path call-graph index + PF rules over ``src/``;
* ``trace``    — GARL smoke trace + the PC001/PC002/PC003 IR passes;
* ``combined`` — what ``repro perfcheck src`` actually does.

Results land in ``BENCH_perfcheck.json`` at the repo root::

    PYTHONPATH=src python benchmarks/perfcheck_overhead.py

``--quick`` runs one repetition instead of three, skips the JSON write
unless ``--write`` is also given, and exits non-zero when the combined
run exceeds the ``GATE_SECONDS`` budget (30 s) — the same number the CI
job relies on.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.analysis.perfcheck import run_perfcheck

REPO_ROOT = Path(__file__).resolve().parents[1]
GATE_SECONDS = 30.0


def timed(reps: int, **kwargs) -> dict:
    seconds = []
    findings = suppressions = groups = 0
    for _ in range(reps):
        t0 = time.perf_counter()
        report = run_perfcheck(paths=["src"], **kwargs)
        seconds.append(time.perf_counter() - t0)
        findings = len(report.findings)
        suppressions = len(report.suppressions)
        groups = sum(len(t.fusion.groups) for t in report.traces)
    arr = np.asarray(seconds)
    return {
        "reps": reps,
        "mean_seconds": round(float(arr.mean()), 3),
        "min_seconds": round(float(arr.min()), 3),
        "max_seconds": round(float(arr.max()), 3),
        "findings": findings,
        "suppressions": suppressions,
        "fusion_groups": groups,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="one rep per mode; gate on the combined budget")
    parser.add_argument("--write", action="store_true",
                        help="write BENCH_perfcheck.json even with --quick")
    args = parser.parse_args()

    reps = 1 if args.quick else 3
    static = timed(reps, static=True, trace=False)
    trace = timed(reps, static=False, trace=True)
    combined = timed(reps, static=True, trace=True)

    report = {
        "bench": "perfcheck_overhead",
        "workload": "PF rules over src/ + GARL smoke trace (kaist, "
                    "3 UGVs x 1 UAV) through PC001/PC002/PC003",
        "gate_seconds": GATE_SECONDS,
        "static_only": static,
        "trace_only": trace,
        "combined": combined,
        "within_budget": combined["max_seconds"] < GATE_SECONDS,
    }
    if not args.quick or args.write:
        out = REPO_ROOT / "BENCH_perfcheck.json"
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(json.dumps(report, indent=2))
        print(f"\nwritten to {out}")
    else:
        print(json.dumps(report, indent=2))

    if not report["within_budget"]:
        print(f"perfcheck exceeded the {GATE_SECONDS:.0f}s budget",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
