"""Fig. 4: collection ψ vs number of UGVs (V'=2) and UAVs per UGV (U=4).

Reuses the shared coalition sweep computed by the Fig. 3 bench (or
computes it if this bench runs first) and prints the ψ panels.
"""

import numpy as np

from repro.experiments import coalition_series, format_coalition_series
from repro.viz import line_chart

from benchmarks.conftest import get_coalition_records, write_report


def test_fig4_collection(benchmark, preset, output_dir):
    records = benchmark.pedantic(lambda: get_coalition_records(preset),
                                 iterations=1, rounds=1)

    lines = ["Fig. 4 — collection ψ vs coalition size, bench scale", ""]
    for campus in ("kaist", "ucla"):
        for axis, label in (("ugvs", "vs U (V'=2)"), ("uavs", "vs V' (U=4)")):
            lines.append(f"--- {campus.upper()} {label} ---")
            lines.append(format_coalition_series(records[campus], axis, "psi"))
            lines.append("")

    # Emit the actual figure panels as SVG line charts.
    for campus in ("kaist", "ucla"):
        for axis, x_label in (("ugvs", "No. of UGVs (U)"), ("uavs", "No. of UAVs (V')")):
            panel = coalition_series(records[campus], axis, "psi")
            chart = line_chart(panel, title=f"Fig. 4 — {campus.upper()} {x_label}",
                               x_label=x_label, y_label="ψ")
            chart.save(output_dir / f"fig4_{campus}_{axis}.svg")

    for campus, recs in records.items():
        for record in recs:
            assert 0.0 <= record.metrics["psi"] <= 1.0 + 1e-9

    write_report(output_dir, "fig4_collection", "\n".join(lines))
