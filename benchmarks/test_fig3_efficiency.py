"""Fig. 3: efficiency λ vs number of UGVs (V'=2) and UAVs per UGV (U=4).

Paper shape: λ rises then falls along both axes for learned methods;
Random stays flat and low; GARL leads everywhere.  This bench runs the
shared coalition sweep (reused by the Fig. 4-6 benches) and prints all
four λ panels.
"""

import numpy as np

from repro.experiments import coalition_series, format_coalition_series
from repro.viz import line_chart

from benchmarks.conftest import get_coalition_records, write_report


def test_fig3_efficiency(benchmark, preset, output_dir):
    records = benchmark.pedantic(lambda: get_coalition_records(preset),
                                 iterations=1, rounds=1)

    lines = ["Fig. 3 — efficiency λ vs coalition size, bench scale", ""]
    for campus in ("kaist", "ucla"):
        for axis, label in (("ugvs", "panel (a/b): vs U, V'=2"),
                            ("uavs", "panel (c/d): vs V', U=4")):
            lines.append(f"--- {campus.upper()} {label} ---")
            lines.append(format_coalition_series(records[campus], axis, "efficiency"))
            lines.append("")

    # Emit the actual figure panels as SVG line charts.
    for campus in ("kaist", "ucla"):
        for axis, x_label in (("ugvs", "No. of UGVs (U)"), ("uavs", "No. of UAVs (V')")):
            panel = coalition_series(records[campus], axis, "efficiency")
            chart = line_chart(panel, title=f"Fig. 3 — {campus.upper()} {x_label}",
                               x_label=x_label, y_label="λ")
            chart.save(output_dir / f"fig3_{campus}_{axis}.svg")

    for campus, recs in records.items():
        assert recs, f"no records for {campus}"
        for record in recs:
            assert np.isfinite(record.efficiency)

    write_report(output_dir, "fig3_efficiency", "\n".join(lines))
