"""Load-test the ``repro serve`` inference service against its SLOs.

End to end, the way an operator would: train a one-iteration smoke
checkpoint (or take ``--artifact``), freeze it with
:func:`repro.serve.artifact.export_artifact`, boot the real
``python -m repro serve`` process on an ephemeral port, then replay
recorded environment observations from many concurrent scenario streams
(:mod:`repro.serve.loadgen`) over keep-alive connections.

Reported per run: p50/p90/p99/max latency, sustained throughput, shed
(429) and timeout (504) rates, plus the engine's own batch accounting
scraped from ``/v1/metrics``.  Results land in ``BENCH_serve.json`` at
the repo root::

    PYTHONPATH=src python benchmarks/serve_latency.py

``--quick`` runs a reduced stream count, skips the JSON write unless
``--write`` is also given, and exits non-zero when the p99 latency
reaches ``--gate-ms`` or any request errs — the CI regression gate for
the serving subsystem.
"""

from __future__ import annotations

import argparse
import asyncio
import http.client
import json
import os
import shutil
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.serve.loadgen import build_observation_pool, run_load  # noqa: E402

GATE_P99_MS_QUICK = 500.0
GATE_P99_MS_FULL = 2000.0


def _make_artifact(workdir: Path) -> Path:
    """One smoke training iteration, frozen into an artifact."""
    from repro.experiments.runner import run_training
    from repro.serve.artifact import export_artifact

    run_dir = workdir / "run"
    run_training("garl", "kaist", "smoke", train_iterations=1,
                 checkpoint_dir=run_dir, save_every=1, handle_signals=False)
    return export_artifact(run_dir, workdir / "artifact")


def _boot_service(artifact: Path, workdir: Path, *, max_batch: int,
                  max_wait_us: float, queue_limit: int,
                  timeout_ms: float) -> tuple[subprocess.Popen, str, int]:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + \
        env.get("PYTHONPATH", "")
    ready = workdir / "ready"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", str(artifact),
         "--port", "0", "--ready-file", str(ready),
         "--max-batch", str(max_batch),
         "--max-wait-us", str(max_wait_us),
         "--queue-limit", str(queue_limit),
         "--timeout-ms", str(timeout_ms)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    deadline = time.perf_counter() + 120
    while not ready.exists():
        if proc.poll() is not None:
            raise RuntimeError(f"service died:\n{proc.stdout.read()}")
        if time.perf_counter() > deadline:
            proc.kill()
            raise RuntimeError("service never became ready")
        time.sleep(0.05)
    host, port = ready.read_text().split()
    return proc, host, int(port)


def _scrape_metrics(host: str, port: int) -> dict:
    conn = http.client.HTTPConnection(host, port, timeout=10)
    conn.request("GET", "/v1/metrics")
    blob = json.loads(conn.getresponse().read())
    conn.close()
    return blob


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--artifact", type=Path, default=None,
                        help="existing artifact dir (default: train+export)")
    parser.add_argument("--streams", type=int, default=1000,
                        help="concurrent scenario streams (default 1000)")
    parser.add_argument("--requests", type=int, default=4,
                        help="requests per stream (default 4)")
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--max-wait-us", type=float, default=4000.0)
    parser.add_argument("--queue-limit", type=int, default=2048)
    parser.add_argument("--timeout-ms", type=float, default=5000.0)
    parser.add_argument("--ramp-s", type=float, default=3.0,
                        help="stagger window for opening connections")
    parser.add_argument("--gate-ms", type=float, default=None,
                        help="p99 SLO gate in ms (default: "
                             f"{GATE_P99_MS_QUICK} quick / "
                             f"{GATE_P99_MS_FULL} full saturation run)")
    parser.add_argument("--quick", action="store_true",
                        help="reduced load; enforce the p99 gate; no JSON "
                             "write unless --write")
    parser.add_argument("--write", action="store_true",
                        help="write BENCH_serve.json even with --quick")
    args = parser.parse_args(argv)

    if args.quick:
        args.streams = min(args.streams, 200)
        args.requests = min(args.requests, 3)
    if args.gate_ms is None:
        args.gate_ms = GATE_P99_MS_QUICK if args.quick else GATE_P99_MS_FULL

    workdir = Path(tempfile.mkdtemp(prefix="serve_bench_"))
    proc = None
    try:
        artifact = args.artifact or _make_artifact(workdir)
        print(f"artifact: {artifact}", flush=True)

        pool = build_observation_pool("kaist", "smoke", 4, 2, seed=0)
        print(f"observation pool: {len(pool)} timesteps", flush=True)

        proc, host, port = _boot_service(
            artifact, workdir, max_batch=args.max_batch,
            max_wait_us=args.max_wait_us, queue_limit=args.queue_limit,
            timeout_ms=args.timeout_ms)
        print(f"service up on {host}:{port}", flush=True)

        summary = asyncio.run(run_load(
            host, port, pool, streams=args.streams,
            requests_per_stream=args.requests, ramp_s=args.ramp_s))
        metrics = _scrape_metrics(host, port)

        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=60)

        result = {
            "bench": "serve_latency",
            "workload": {
                "campus": "kaist", "preset": "smoke",
                "num_ugvs": 4, "num_uavs_per_ugv": 2,
                "pool_timesteps": len(pool),
            },
            "engine": {
                "max_batch": args.max_batch,
                "max_wait_us": args.max_wait_us,
                "queue_limit": args.queue_limit,
                "timeout_ms": args.timeout_ms,
            },
            "gate_p99_ms": args.gate_ms,
            **summary,
            "engine_stats": metrics.get("engine", {}),
            "drain_exit_code": rc,
        }
        p99 = summary["latency_ms"]["p99"]
        errors = (sum(summary["errors"].values())
                  + summary["connect_errors"] + summary["timeouts"])
        gate_passed = p99 < args.gate_ms and errors == 0 and rc == 0
        result["gate_passed"] = gate_passed

        print(json.dumps(result, indent=2))
        if not args.quick or args.write:
            out = REPO_ROOT / "BENCH_serve.json"
            out.write_text(json.dumps(result, indent=2) + "\n")
            print(f"wrote {out}")
        if args.quick and not gate_passed:
            print(f"GATE FAILED: p99 {p99:.2f} ms vs {args.gate_ms} ms, "
                  f"errors={errors}, drain rc={rc}", file=sys.stderr)
            return 1
        return 0
    finally:
        if proc is not None and proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
