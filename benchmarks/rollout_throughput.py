"""Measure rollout/update throughput: sequential vs vectorized execution.

Compares the per-episode sequential path (``run_episode``) against the
batched pipeline (``VecAirGroundEnv`` + ``run_vec_episodes`` + array
rollouts) at K in {1, 4, 8} replicas:

* **rollout steps/s** — environment steps collected per wall second,
  policy forwards included (a vec step advances K envs);
* **update minibatch steps/s** — PPO optimizer steps per wall second,
  and the per-sample processing rate, sequential ``update_ugv``/
  ``update_uav`` vs ``update_ugv_vec``/``update_uav_vec``.

``--workers W [W ...]`` adds the multi-process axis: the same vectorized
rollout with the replicas sharded over W ``repro.env.workers`` processes
(workers=1 is always measured as the scaling baseline).  Each row
records the host's usable core count — worker scaling is meaningless on
a single core, so the ``--quick`` scaling gate (workers=2 must reach
1.3x workers=1) only arms when at least two cores are available.

Results land in ``BENCH_vecrollout.json`` at the repo root:

    PYTHONPATH=src python benchmarks/rollout_throughput.py

``--quick`` runs a reduced matrix (K in {1, 4}, fewer reps), skips the
JSON write unless ``--write`` is also given, and exits non-zero if the
vectorized rollout at K=4 is slower than the sequential path — the CI
regression gate for the batched pipeline.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

import numpy as np

from repro.core.garl import GARLAgent
from repro.core.ippo import run_episode, run_vec_episodes
from repro.core.buffer import VecUAVRollout, VecUGVRollout
from repro.env.vector import VecAirGroundEnv
from repro.env.workers import WorkerVecEnv
from repro.experiments import get_preset
from repro.experiments.runner import build_env

REPO_ROOT = Path(__file__).resolve().parents[1]
NUM_UGVS = 4
NUM_UAVS_PER_UGV = 2


def _make_agent(seed: int = 0):
    preset = get_preset("smoke")
    env = build_env("kaist", preset, num_ugvs=NUM_UGVS,
                    num_uavs_per_ugv=NUM_UAVS_PER_UGV, seed=seed)
    return env, GARLAgent(env, preset.garl_config())


def bench_sequential_rollout(reps: int) -> float:
    env, agent = _make_agent()
    rng = np.random.default_rng(0)
    run_episode(env, agent.ugv_policy, agent.uav_policy, rng)  # warmup
    t0 = time.perf_counter()
    for _ in range(reps):
        run_episode(env, agent.ugv_policy, agent.uav_policy, rng)
    dt = time.perf_counter() - t0
    return reps * env.config.episode_len / dt


def bench_vec_rollout(num_envs: int, reps: int) -> float:
    env, agent = _make_agent()
    venv = VecAirGroundEnv.from_env(env, num_envs)
    rng = np.random.default_rng(0)
    run_vec_episodes(venv, agent.ugv_policy, agent.uav_policy, rng)  # warmup
    t0 = time.perf_counter()
    for _ in range(reps):
        run_vec_episodes(venv, agent.ugv_policy, agent.uav_policy, rng)
    dt = time.perf_counter() - t0
    return reps * num_envs * env.config.episode_len / dt


def _usable_cpus() -> int:
    """Cores this process may run on (affinity-aware where supported)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def bench_worker_rollout(num_envs: int, num_workers: int, reps: int) -> float:
    """Steps/s with replicas sharded over ``num_workers`` processes."""
    env, agent = _make_agent()
    venv = WorkerVecEnv(env, num_envs, num_workers)
    try:
        rng = np.random.default_rng(0)
        run_vec_episodes(venv, agent.ugv_policy, agent.uav_policy, rng)  # warmup
        t0 = time.perf_counter()
        for _ in range(reps):
            run_vec_episodes(venv, agent.ugv_policy, agent.uav_policy, rng)
        dt = time.perf_counter() - t0
    finally:
        venv.close()
    return reps * num_envs * env.config.episode_len / dt


def bench_sequential_update() -> dict:
    env, agent = _make_agent()
    trainer = agent.trainer
    ugv_samples, uav_samples, _, _, _ = trainer.collect(episodes=1)
    trainer.update_ugv(ugv_samples[:8])  # warmup
    ppo = trainer.ppo
    n = len(ugv_samples) + len(uav_samples)
    steps = ppo.epochs * (
        -(-len(ugv_samples) // ppo.minibatch_size)
        + -(-len(uav_samples) // ppo.minibatch_size))
    t0 = time.perf_counter()
    trainer.update_ugv(ugv_samples)
    trainer.update_uav(uav_samples)
    dt = time.perf_counter() - t0
    return {"minibatch_steps_per_s": steps / dt,
            "samples_per_s": ppo.epochs * n / dt}


def bench_vec_update(num_envs: int) -> dict:
    env, agent = _make_agent()
    trainer = agent.trainer
    ugv_roll, uav_roll, _, _, _ = trainer.collect_vec(1, num_envs)
    ppo = trainer.ppo
    ugv_flat = ugv_roll.flat_samples(ppo.gamma, ppo.gae_lambda)
    uav_flat = uav_roll.flat_samples(ppo.gamma, ppo.gae_lambda)
    n = len(ugv_flat) + len(uav_flat)
    steps = ppo.epochs * (
        -(-len(ugv_flat) // ppo.minibatch_size)
        + -(-len(uav_flat) // ppo.minibatch_size))
    t0 = time.perf_counter()
    trainer.update_ugv_vec(ugv_roll)
    trainer.update_uav_vec(uav_roll)
    dt = time.perf_counter() - t0
    return {"minibatch_steps_per_s": steps / dt,
            "samples_per_s": ppo.epochs * n / dt}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced matrix; exit 1 if vec K=4 rollout is "
                             "slower than sequential")
    parser.add_argument("--write", action="store_true",
                        help="write BENCH_vecrollout.json even with --quick")
    parser.add_argument("--workers", type=int, nargs="+", default=None,
                        metavar="W",
                        help="also bench the multi-process worker pool at "
                             "these worker counts (workers=1 is always "
                             "added as the scaling baseline); with --quick, "
                             "gate workers=2 >= 1.3x workers=1 when the "
                             "host has >= 2 cores")
    args = parser.parse_args(argv)

    reps = 1 if args.quick else 3
    ks = (1, 4) if args.quick else (1, 4, 8)

    seq_sps = bench_sequential_rollout(reps)
    print(f"sequential rollout: {seq_sps:8.1f} steps/s")
    vec_sps = {}
    for k in ks:
        vec_sps[k] = bench_vec_rollout(k, reps)
        print(f"vec rollout K={k}:   {vec_sps[k]:8.1f} steps/s "
              f"({vec_sps[k] / seq_sps:.2f}x)")

    worker_sps: dict[int, float] = {}
    cpus = _usable_cpus()
    if args.workers:
        pool_k = max(ks)
        worker_counts = sorted({1, *args.workers})
        if max(worker_counts) > pool_k:
            parser.error(f"--workers values must be <= K={pool_k} "
                         f"(each worker needs at least one replica)")
        for w in worker_counts:
            worker_sps[w] = bench_worker_rollout(pool_k, w, reps)
            print(f"workers={w} K={pool_k}:  {worker_sps[w]:8.1f} steps/s "
                  f"({worker_sps[w] / worker_sps[1]:.2f}x vs workers=1, "
                  f"{cpus} core(s))")

    seq_upd = bench_sequential_update()
    vec_upd = bench_vec_update(max(ks))
    print(f"sequential update:  {seq_upd['minibatch_steps_per_s']:8.1f} "
          f"minibatch steps/s ({seq_upd['samples_per_s']:.0f} samples/s)")
    print(f"vec update K={max(ks)}:    {vec_upd['minibatch_steps_per_s']:8.1f} "
          f"minibatch steps/s ({vec_upd['samples_per_s']:.0f} samples/s)")

    results = {
        "preset": "smoke", "campus": "kaist",
        "num_ugvs": NUM_UGVS, "num_uavs_per_ugv": NUM_UAVS_PER_UGV,
        "reps": reps,
        "rollout_steps_per_s": {
            "sequential": round(seq_sps, 1),
            **{f"vec_k{k}": round(v, 1) for k, v in vec_sps.items()},
        },
        "rollout_speedup": {f"k{k}": round(v / seq_sps, 2)
                            for k, v in vec_sps.items()},
        "update": {
            "sequential": {k: round(v, 1) for k, v in seq_upd.items()},
            f"vec_k{max(ks)}": {k: round(v, 1) for k, v in vec_upd.items()},
        },
    }
    if worker_sps:
        results["workers"] = {
            "num_envs": max(ks),
            "cpus": cpus,
            "rollout_steps_per_s": {f"w{w}": round(v, 1)
                                    for w, v in worker_sps.items()},
            "speedup_vs_w1": {f"w{w}": round(v / worker_sps[1], 2)
                              for w, v in worker_sps.items()},
            "speedup_vs_sequential": {f"w{w}": round(v / seq_sps, 2)
                                      for w, v in worker_sps.items()},
        }
    if not args.quick or args.write:
        out = REPO_ROOT / "BENCH_vecrollout.json"
        out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"written to {out}")

    if args.quick and vec_sps[4] < seq_sps:
        print(f"FAIL: vec K=4 rollout ({vec_sps[4]:.1f} steps/s) slower than "
              f"sequential ({seq_sps:.1f} steps/s)")
        return 1
    if args.quick and 2 in worker_sps:
        if cpus < 2:
            print(f"SKIP workers scaling gate: only {cpus} usable core(s); "
                  f"multi-process scaling is unmeasurable on this host")
        elif worker_sps[2] < 1.3 * worker_sps[1]:
            print(f"FAIL: workers=2 rollout ({worker_sps[2]:.1f} steps/s) "
                  f"below 1.3x workers=1 ({worker_sps[1]:.1f} steps/s) "
                  f"on a {cpus}-core host")
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
