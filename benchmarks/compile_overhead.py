"""Time the compiled UAV training step against the eager tape.

The compiled executor (:mod:`repro.nn.compile`) exists to pay the trace
+ lowering cost once and then replay the plan without Python-level graph
bookkeeping.  This benchmark measures one real GARL UAV surrogate-loss
minibatch — forward + backward, the unit :class:`CompiledStep` replays —
in both modes on the smoke preset, plus the one-time capture cost:

* ``eager``   — tape-building forward, closure-walking backward;
* ``replay``  — fused, arena-backed plan execution + VJP sweep;
* ``capture`` — first-call trace + lowering (amortised over a run).

Results land in ``BENCH_compile.json`` at the repo root::

    PYTHONPATH=src python benchmarks/compile_overhead.py

``--quick`` runs fewer repetitions, skips the JSON write unless
``--write`` is also given, and exits non-zero when the replayed step is
not at least ``GATE_SPEEDUP`` (1.2x) faster than eager — the number the
CI compile job gates on.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.nn.compile_cli import build_uav_step

REPO_ROOT = Path(__file__).resolve().parents[1]
GATE_SPEEDUP = 1.2


def _one_step(step, args, params) -> float:
    for p in params:
        p.grad = None
    t0 = time.perf_counter()
    res = step(*args)
    res.backward()
    return time.perf_counter() - t0


def _time_blocks(step, args, params, blocks: int, block_reps: int) -> tuple[list, list]:
    """Alternate eager/replay *blocks* of consecutive steps.

    Consecutive same-mode steps are what a training run executes, and
    eager's per-step tape/closure allocation churn only shows at that
    cadence; alternating whole blocks still spreads clock drift and
    cache noise evenly across the two modes.
    """
    eager, replay = [], []
    for _ in range(blocks):
        # Collect at the boundary so one mode's cyclic garbage (the eager
        # tape's closure cycles) is never collected on the other's clock.
        step.enabled = False
        gc.collect()
        eager.extend(_one_step(step, args, params) for _ in range(block_reps))
        step.enabled = True
        gc.collect()
        replay.extend(_one_step(step, args, params) for _ in range(block_reps))
    return eager, replay


def _stats(seconds: list[float]) -> dict:
    arr = np.asarray(seconds)
    return {
        "reps": len(seconds),
        "mean_ms": round(float(arr.mean()) * 1e3, 3),
        "min_ms": round(float(arr.min()) * 1e3, 3),
        "max_ms": round(float(arr.max()) * 1e3, 3),
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer reps; gate on the replay speedup")
    parser.add_argument("--write", action="store_true",
                        help="write BENCH_compile.json even with --quick")
    parser.add_argument("--minibatch", type=int, default=64)
    args = parser.parse_args()

    blocks, block_reps = (4, 20) if args.quick else (8, 40)

    trainer, step_args = build_uav_step(minibatch=args.minibatch)
    step = trainer._uav_step
    params = trainer.uav_optimizer.params

    t0 = time.perf_counter()
    step(*step_args)  # trace + lowering
    capture_s = time.perf_counter() - t0
    if step.disabled_reason:
        print(f"lowering failed: {step.disabled_reason}", file=sys.stderr)
        return 1

    _time_blocks(step, step_args, params, 1, 5)  # warmup
    eager, replay = _time_blocks(step, step_args, params, blocks, block_reps)

    # The gate compares total wall-clock over the run — the quantity a
    # training loop pays.  A min-over-reps gate would filter out eager's
    # allocation/gc churn, which is precisely the overhead replay removes.
    speedup = sum(eager) / sum(replay)
    plan = step.describe()["plans"][0]
    report = {
        "bench": "compile_overhead",
        "workload": "GARL UAV surrogate minibatch "
                    f"(batch {len(step_args[0])}, kaist smoke), "
                    "forward + backward",
        "gate_speedup": GATE_SPEEDUP,
        "eager": _stats(eager),
        "replay": _stats(replay),
        "capture_ms": round(capture_s * 1e3, 3),
        "speedup": round(speedup, 3),
        "fused_groups": len(plan["fused_groups"]),
        "arena_bytes": plan["arena_bytes"],
        "total_alloc_bytes": plan["total_alloc_bytes"],
        "gate_passed": speedup >= GATE_SPEEDUP,
    }
    if not args.quick or args.write:
        out = REPO_ROOT / "BENCH_compile.json"
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(json.dumps(report, indent=2))
        print(f"\nwritten to {out}")
    else:
        print(json.dumps(report, indent=2))

    if not report["gate_passed"]:
        print(f"compiled step under the {GATE_SPEEDUP}x speedup gate "
              f"(got {speedup:.2f}x)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
