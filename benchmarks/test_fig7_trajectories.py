"""Fig. 7: movement traces of UGV-UAV coalitions (U=4, V'=2, 100 slots).

The paper shows traces qualitatively: GARL splits the workzone into
sub-workzones (no overlapping or missed areas), GAM/GAT gather
competitively in the same areas, AE-Comm/DGN wander.  This bench
quantifies the traces with coverage / inter-UGV overlap / travel
statistics for the same five methods.
"""

import numpy as np

from repro.experiments import format_trajectory_stats, trajectory_study
from repro.experiments.runner import build_env
from repro.viz import render_trajectories

from benchmarks.conftest import write_report

METHODS = ("garl", "aecomm", "dgn", "gam", "gat")


def test_fig7_trajectories(benchmark, preset, output_dir):
    results = {}

    def run():
        results.update(trajectory_study("kaist", METHODS, preset=preset, seed=0))
        return results

    benchmark.pedantic(run, iterations=1, rounds=1)

    lines = ["Fig. 7 — trajectory statistics on KAIST (U=4, V'=2), bench scale",
             "",
             format_trajectory_stats(results),
             "",
             "paper (qualitative): GARL covers sub-workzones with no overlap;",
             "GAM/GAT overlap competitively; AE-Comm/DGN wander inefficiently."]

    # Render each method's trace as an SVG next to the text report — the
    # actual Fig. 7 panels.
    env = build_env("kaist", preset, num_ugvs=4, num_uavs_per_ugv=2, seed=0)
    for method, payload in results.items():
        canvas = render_trajectories(env, payload["trace"],
                                     title=f"Fig. 7 — {method} (bench scale)")
        canvas.save(output_dir / f"fig7_{method}.svg")
    lines.append("")
    lines.append(f"SVG panels written to {output_dir}/fig7_<method>.svg")

    for method, payload in results.items():
        stats = payload["stats"]
        assert 0.0 <= stats["coverage"] <= 1.0
        assert 0.0 <= stats["overlap"] <= 1.0
        assert stats["ugv_travel_metres"] >= 0.0
        assert len(payload["trace"]) == preset.episode_len

    write_report(output_dir, "fig7_trajectories", "\n".join(lines))
