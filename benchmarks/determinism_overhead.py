"""Measure the determinism checker's per-iteration fingerprint cost.

Two questions about ``repro.analysis.determinism``:

* **fingerprint latency** — how long does one full state fingerprint
  (policy params, trainer state, env digest, telemetry row) take, and
  what fraction of a training iteration is that?  The lockstep bisector
  fingerprints after *every* iteration, so this ratio bounds how much
  slower ``repro check-determinism`` is than two plain runs.
* **end-to-end cost** — wall-time of a full ``check_determinism`` pass
  (two lockstep runs + snapshots + fingerprints) against two plain
  same-budget training runs.

Results land in ``BENCH_determinism.json`` at the repo root:

    PYTHONPATH=src python benchmarks/determinism_overhead.py

``--quick`` runs a reduced matrix, skips the JSON write unless
``--write`` is also given, and exits non-zero if fingerprinting costs
5% or more of an iteration — the CI regression gate keeping the
checker's instrumentation effectively free.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

from repro.analysis.determinism.bisector import check_determinism
from repro.analysis.determinism.fingerprint import fingerprint_agent
from repro.experiments.runner import build_agent

REPO_ROOT = Path(__file__).resolve().parents[1]
GATE_PCT = 5.0


def _make_agent(num_ugvs: int = 2, num_uavs_per_ugv: int = 1):
    return build_agent("garl", "kaist", "smoke", num_ugvs=num_ugvs,
                       num_uavs_per_ugv=num_uavs_per_ugv, seed=0)


def bench_fingerprint(iterations: int, reps: int) -> dict:
    """Fingerprint latency vs. training-iteration latency."""
    agent = _make_agent()
    agent.train(1)  # warmup (campus cache, first-touch allocations)
    t0 = time.perf_counter()
    agent.train(iterations)
    iter_seconds = (time.perf_counter() - t0) / iterations

    fingerprint_agent(agent)  # warmup
    times = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fingerprint_agent(agent)
        times.append(time.perf_counter() - t0)
    fp_median = statistics.median(times)
    return {
        "iterations": iterations,
        "iter_seconds": iter_seconds,
        "fingerprint_seconds_median": fp_median,
        "fingerprint_seconds_max": max(times),
        "overhead_pct_per_iteration": 100.0 * fp_median / iter_seconds,
    }


def bench_end_to_end(iterations: int) -> dict:
    """Full check_determinism vs. two plain same-budget runs."""
    t0 = time.perf_counter()
    for seed_run in range(2):
        agent = _make_agent()
        agent.train(iterations)
    two_runs = time.perf_counter() - t0

    t0 = time.perf_counter()
    report = check_determinism(iterations=iterations, num_ugvs=2,
                               num_uavs_per_ugv=1, agent_factory=_make_agent)
    check_seconds = time.perf_counter() - t0
    return {
        "iterations": iterations,
        "two_plain_runs_seconds": two_runs,
        "check_seconds": check_seconds,
        "slowdown_x": check_seconds / two_runs,
        "equal": report.equal,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced matrix + CI regression gate")
    parser.add_argument("--write", action="store_true",
                        help="write BENCH_determinism.json even with --quick")
    args = parser.parse_args(argv)

    iterations = 3 if args.quick else 10
    reps = 10 if args.quick else 50

    fp = bench_fingerprint(iterations, reps)
    print(f"fingerprint   iter={fp['iter_seconds'] * 1e3:.1f} ms  "
          f"fingerprint={fp['fingerprint_seconds_median'] * 1e3:.2f} ms  "
          f"overhead/iter={fp['overhead_pct_per_iteration']:.2f}%")

    e2e = bench_end_to_end(iterations)
    print(f"end-to-end    2 plain runs={e2e['two_plain_runs_seconds']:.2f} s  "
          f"check-determinism={e2e['check_seconds']:.2f} s  "
          f"slowdown={e2e['slowdown_x']:.2f}x  "
          f"equal={e2e['equal']}")

    results = {"fingerprint": fp, "end_to_end": e2e}
    if not args.quick or args.write:
        out = REPO_ROOT / "BENCH_determinism.json"
        out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"results written to {out}")

    if args.quick and fp["overhead_pct_per_iteration"] >= GATE_PCT:
        print(f"GATE FAILED: fingerprinting costs "
              f"{fp['overhead_pct_per_iteration']:.2f}% of an iteration "
              f">= {GATE_PCT}%", file=sys.stderr)
        return 1
    if not e2e["equal"]:
        print("GATE FAILED: check_determinism reported divergence on a "
              "clean build", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
