"""Fig. 5: fairness ξ vs number of UGVs (V'=2) and UAVs per UGV (U=4).

Reuses the shared coalition sweep computed by the Fig. 3 bench (or
computes it if this bench runs first) and prints the ξ panels.
"""

import numpy as np

from repro.experiments import coalition_series, format_coalition_series
from repro.viz import line_chart

from benchmarks.conftest import get_coalition_records, write_report


def test_fig5_fairness(benchmark, preset, output_dir):
    records = benchmark.pedantic(lambda: get_coalition_records(preset),
                                 iterations=1, rounds=1)

    lines = ["Fig. 5 — fairness ξ vs coalition size, bench scale", ""]
    for campus in ("kaist", "ucla"):
        for axis, label in (("ugvs", "vs U (V'=2)"), ("uavs", "vs V' (U=4)")):
            lines.append(f"--- {campus.upper()} {label} ---")
            lines.append(format_coalition_series(records[campus], axis, "xi"))
            lines.append("")

    # Emit the actual figure panels as SVG line charts.
    for campus in ("kaist", "ucla"):
        for axis, x_label in (("ugvs", "No. of UGVs (U)"), ("uavs", "No. of UAVs (V')")):
            panel = coalition_series(records[campus], axis, "xi")
            chart = line_chart(panel, title=f"Fig. 5 — {campus.upper()} {x_label}",
                               x_label=x_label, y_label="ξ")
            chart.save(output_dir / f"fig5_{campus}_{axis}.svg")

    for campus, recs in records.items():
        for record in recs:
            assert 0.0 <= record.metrics["xi"] <= 1.0 + 1e-9

    write_report(output_dir, "fig5_fairness", "\n".join(lines))
