"""Measure full-state checkpoint write latency and training overhead.

Two questions about ``repro.experiments.checkpoint``:

* **save latency** — how long does one atomic full-state save take, and
  how does it scale with model size (``hidden_dim``)?  Includes state
  extraction, flattening, the npz + manifest writes and the directory
  rename.
* **training overhead** — what fraction of training wall-time does
  periodic checkpointing cost?  Reported two ways: amortized (median
  save latency spread over ``save_every`` measured iterations) and
  measured end-to-end (same training run with and without a
  :class:`TrainingCheckpointer` attached).

Results land in ``BENCH_checkpoint.json`` at the repo root:

    PYTHONPATH=src python benchmarks/checkpoint_overhead.py

``--quick`` runs a reduced matrix, skips the JSON write unless
``--write`` is also given, and exits non-zero if the amortized overhead
at ``--save-every 10`` reaches 5% of training throughput — the CI
regression gate for the checkpoint subsystem.
"""

from __future__ import annotations

import argparse
import json
import shutil
import statistics
import sys
import tempfile
import time
from pathlib import Path

from repro.core.garl import GARLAgent
from repro.experiments import TrainingCheckpointer, get_preset
from repro.experiments.runner import build_env

REPO_ROOT = Path(__file__).resolve().parents[1]
SAVE_EVERY = 10
GATE_PCT = 5.0


def _make_agent(hidden_dim: int, num_ugvs: int = 2, num_uavs_per_ugv: int = 1):
    preset = get_preset("smoke")
    env = build_env("kaist", preset, num_ugvs=num_ugvs,
                    num_uavs_per_ugv=num_uavs_per_ugv, seed=0)
    return GARLAgent(env, preset.garl_config(hidden_dim=hidden_dim))


def _state_stats(state: dict) -> tuple[int, int]:
    """(array leaves, total parameter/state bytes) of a state tree."""
    from repro.experiments import flatten_state

    arrays, _ = flatten_state(state)
    return len(arrays), sum(a.nbytes for a in arrays.values())


def bench_save_latency(hidden_dim: int, reps: int) -> dict:
    from repro.experiments import write_checkpoint

    agent = _make_agent(hidden_dim)
    leaves, nbytes = _state_stats(agent.state_dict())
    tmp = Path(tempfile.mkdtemp(prefix="ckpt_bench_"))
    try:
        write_checkpoint(tmp / "warmup", agent.state_dict(), {})  # warmup
        times = []
        for i in range(reps):
            t0 = time.perf_counter()
            write_checkpoint(tmp / f"iter_{i:06d}", agent.state_dict(),
                             {"iterations_completed": i})
            times.append(time.perf_counter() - t0)
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    on_disk = 0  # recompute once for reporting
    tmp = Path(tempfile.mkdtemp(prefix="ckpt_bench_"))
    try:
        path = write_checkpoint(tmp / "probe", agent.state_dict(), {})
        on_disk = sum(p.stat().st_size for p in path.iterdir())
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
    return {
        "hidden_dim": hidden_dim,
        "array_leaves": leaves,
        "state_bytes": nbytes,
        "checkpoint_bytes_on_disk": on_disk,
        "save_seconds_median": statistics.median(times),
        "save_seconds_max": max(times),
    }


def bench_training_overhead(iterations: int, hidden_dim: int = 16) -> dict:
    """Amortized + measured overhead of save_every=SAVE_EVERY checkpointing."""
    # Baseline: plain training, no telemetry, no checkpointing.
    agent = _make_agent(hidden_dim)
    agent.train(1)  # warmup (compiled paths, campus cache)
    t0 = time.perf_counter()
    agent.train(iterations)
    baseline = time.perf_counter() - t0

    # Same budget with a checkpointer attached at the gate cadence.
    agent = _make_agent(hidden_dim)
    agent.train(1)
    tmp = Path(tempfile.mkdtemp(prefix="ckpt_bench_"))
    try:
        checkpointer = TrainingCheckpointer(
            tmp, agent, total_iterations=10**9,  # no final-iteration save
            save_every=SAVE_EVERY, keep_last=3)
        t0 = time.perf_counter()
        agent.train(iterations, callback=checkpointer)
        with_ckpt = time.perf_counter() - t0
        saves = len(checkpointer.available())
        t0 = time.perf_counter()
        checkpointer.save(iterations + 1)
        one_save = time.perf_counter() - t0
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    iter_seconds = baseline / iterations
    amortized_pct = 100.0 * one_save / (SAVE_EVERY * iter_seconds)
    measured_pct = 100.0 * (with_ckpt - baseline) / baseline
    return {
        "iterations": iterations,
        "save_every": SAVE_EVERY,
        "saves_during_run": saves,
        "iter_seconds": iter_seconds,
        "save_seconds": one_save,
        "overhead_pct_amortized": amortized_pct,
        "overhead_pct_measured": measured_pct,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="reduced matrix + CI regression gate")
    parser.add_argument("--write", action="store_true",
                        help="write BENCH_checkpoint.json even with --quick")
    args = parser.parse_args(argv)

    hidden_dims = (16, 32) if args.quick else (16, 32, 64)
    reps = 5 if args.quick else 20
    iterations = 3 if args.quick else 10

    results = {"save_latency": [], "training_overhead": None}
    for hidden_dim in hidden_dims:
        row = bench_save_latency(hidden_dim, reps)
        results["save_latency"].append(row)
        print(f"save latency  hidden_dim={hidden_dim:<3d} "
              f"leaves={row['array_leaves']:<4d} "
              f"state={row['state_bytes'] / 1024:.0f} KiB  "
              f"median={row['save_seconds_median'] * 1e3:.1f} ms")

    overhead = bench_training_overhead(iterations)
    results["training_overhead"] = overhead
    print(f"training      iter={overhead['iter_seconds']:.3f} s  "
          f"save={overhead['save_seconds'] * 1e3:.1f} ms  "
          f"overhead@save_every={SAVE_EVERY}: "
          f"{overhead['overhead_pct_amortized']:.2f}% amortized, "
          f"{overhead['overhead_pct_measured']:+.2f}% measured")

    if not args.quick or args.write:
        out = REPO_ROOT / "BENCH_checkpoint.json"
        out.write_text(json.dumps(results, indent=2) + "\n")
        print(f"results written to {out}")

    if args.quick and overhead["overhead_pct_amortized"] >= GATE_PCT:
        print(f"GATE FAILED: amortized checkpoint overhead "
              f"{overhead['overhead_pct_amortized']:.2f}% >= {GATE_PCT}% "
              f"at --save-every {SAVE_EVERY}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
