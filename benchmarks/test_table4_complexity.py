"""Table IV: per-timeslot inference cost of every method.

The paper reports GPU milliseconds and GPU memory; this CPU reproduction
reports measured per-UGV forward milliseconds and parameter counts.
Paper shape: MADDPG and CubicMap are the most expensive; the UCLA stop
graph (larger B) costs more than KAIST for the graph methods.
"""

from repro.experiments import complexity_study, format_complexity
from repro.experiments.paper_values import TABLE4

from benchmarks.conftest import write_report

METHODS = ("garl", "gam", "gat", "cubicmap", "aecomm", "dgn", "ic3net", "maddpg")


def test_table4_complexity(benchmark, preset, output_dir):
    results = {}

    def run():
        for campus in ("kaist", "ucla"):
            results[campus] = complexity_study(campus, METHODS, preset=preset,
                                               seed=0, repeats=10)
        return results

    benchmark.pedantic(run, iterations=1, rounds=1)

    lines = ["Table IV — computational complexity, bench scale", ""]
    for campus in ("kaist", "ucla"):
        lines.append(f"--- {campus.upper()} (measured: CPU ms/UGV-step, params) ---")
        lines.append(format_complexity(results[campus]))
        lines.append(f"--- {campus.upper()} (paper: GPU ms, GPU MB) ---")
        key = f"{campus}_ms"
        for method in METHODS:
            lines.append(f"{method:16s}  {TABLE4[method][key]:.3f} ms"
                         f"  {TABLE4[method][f'{campus}_mb']} MB")
        lines.append("")

    # UCLA's stop graph is larger: graph-structured methods must not get
    # cheaper when moving from KAIST to UCLA.
    kaist_ms = {r["method"]: r["ms_per_step"] for r in results["kaist"]}
    ucla_ms = {r["method"]: r["ms_per_step"] for r in results["ucla"]}
    slower_on_ucla = sum(ucla_ms[m] >= kaist_ms[m] * 0.8 for m in ("garl", "gat", "gam"))
    lines.append(f"graph methods at least comparable-or-slower on UCLA: "
                 f"{slower_on_ucla}/3")

    for rows in results.values():
        for row in rows:
            assert row["ms_per_step"] > 0
            assert row["parameters"] > 0

    write_report(output_dir, "table4_complexity", "\n".join(lines))
