"""Measure the repro.obs instrumentation overhead on GARL training.

The observability layer's contract is that the *disabled* path — the
``scope()``/``counter_add()`` calls that now live permanently in the
training loop — costs within run-to-run noise.  Three measurements:

* **baseline / disabled_again** — two identical training runs with no
  profiler installed.  Their delta is the run-to-run noise floor; both
  pay the (disabled) instrumentation calls.
* **enabled** — the same run under an installed :class:`Profiler`
  (scope timers + metrics; no op tape), for the informational
  enabled-mode cost.
* **microbench** — tight-loop ns/call of disabled ``scope()`` and
  ``counter_add()``.  Multiplied by the scope-entry count of one real
  training iteration (read off the enabled run's stats) this yields the
  *estimated* disabled-mode overhead as a fraction of iteration time —
  the quantity the CI gate bounds, since the pre-instrumentation
  baseline no longer exists to diff against.

Results land in ``BENCH_profile.json`` at the repo root:

    PYTHONPATH=src python benchmarks/profile_overhead.py

``--quick`` runs fewer iterations, skips the JSON write unless
``--write`` is also given, and exits non-zero if the estimated
disabled-mode overhead reaches 2% — the CI regression gate for the
observability subsystem.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.garl import GARLAgent
from repro.experiments import get_preset
from repro.experiments.runner import build_env
from repro.obs import Profiler
from repro.obs.scope import counter_add, is_profiling, scope

REPO_ROOT = Path(__file__).resolve().parents[1]
GATE_PCT = 2.0
MICRO_CALLS = 200_000


def _fresh_agent() -> GARLAgent:
    preset = get_preset("smoke")
    env = build_env("kaist", preset, num_ugvs=4, num_uavs_per_ugv=2, seed=0)
    return GARLAgent(env, preset.garl_config())


def bench_training(iterations: int, profiler: Profiler | None) -> dict:
    """Time ``iterations`` GARL smoke iterations on a fresh agent."""
    agent = _fresh_agent()
    per_iter: list[float] = []

    def timed(record) -> None:
        per_iter.append(time.perf_counter())

    t0 = time.perf_counter()
    if profiler is not None:
        with profiler:
            agent.train(iterations, callback=timed)
    else:
        agent.train(iterations, callback=timed)
    total = time.perf_counter() - t0
    deltas = [b - a for a, b in zip([t0] + per_iter[:-1], per_iter)]
    return {
        "iterations": iterations,
        "total_seconds": round(total, 4),
        "mean_iteration_ms": round(1e3 * total / iterations, 3),
        "min_iteration_ms": round(1e3 * min(deltas), 3),
        "max_iteration_ms": round(1e3 * max(deltas), 3),
    }


def bench_disabled_calls(n: int = MICRO_CALLS) -> dict:
    """ns/call of the disabled-path primitives (no profiler installed)."""
    assert not is_profiling()
    t0 = time.perf_counter()
    for _ in range(n):
        with scope("bench"):
            pass
    scope_ns = (time.perf_counter() - t0) / n * 1e9

    t0 = time.perf_counter()
    for _ in range(n):
        counter_add("bench")
    counter_ns = (time.perf_counter() - t0) / n * 1e9
    return {
        "calls": n,
        "scope_ns_per_call": round(scope_ns, 1),
        "counter_add_ns_per_call": round(counter_ns, 1),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="reduced run + exit non-zero on gate failure")
    parser.add_argument("--write", action="store_true",
                        help="write BENCH_profile.json even with --quick")
    parser.add_argument("--iterations", type=int, default=None,
                        help="training iterations per measured run "
                             "(default: 3, or 2 with --quick)")
    args = parser.parse_args(argv)

    iterations = args.iterations or (2 if args.quick else 3)

    # Warm-up: one iteration to populate campus/stop-graph caches.
    bench_training(1, None)

    baseline = bench_training(iterations, None)
    disabled_again = bench_training(iterations, None)
    prof = Profiler()
    enabled = bench_training(iterations, prof)

    noise_pct = 100.0 * abs(disabled_again["mean_iteration_ms"]
                            - baseline["mean_iteration_ms"]) \
        / baseline["mean_iteration_ms"]
    enabled_x = enabled["mean_iteration_ms"] / baseline["mean_iteration_ms"]

    micro = bench_disabled_calls()
    # Scope entries + metric calls per iteration, counted off the real
    # enabled run (counters/histograms ≈ optimizer steps + env steps).
    scope_entries = sum(s.count for s in prof.stats.values()) / iterations
    metric_calls = (sum(c.value for c in prof.metrics.counters.values())
                    + sum(h.count for h in prof.metrics.histograms.values())
                    ) / iterations
    est_disabled_ms = (scope_entries * micro["scope_ns_per_call"]
                       + metric_calls * micro["counter_add_ns_per_call"]) / 1e6
    est_disabled_pct = 100.0 * est_disabled_ms / baseline["mean_iteration_ms"]

    report = {
        "bench": "profile_overhead",
        "workload": f"{iterations} GARL smoke iterations, kaist, "
                    f"4 UGVs x 2 UAVs",
        "baseline": baseline,
        "disabled_again": disabled_again,
        "enabled": enabled,
        "microbench_disabled": micro,
        "overhead": {
            "run_to_run_noise_pct": round(noise_pct, 2),
            "enabled_vs_baseline_x": round(enabled_x, 3),
            "scope_entries_per_iteration": round(scope_entries, 1),
            "metric_calls_per_iteration": round(metric_calls, 1),
            "estimated_disabled_overhead_pct": round(est_disabled_pct, 4),
            "gate_pct": GATE_PCT,
        },
    }
    print(json.dumps(report, indent=2))

    if not args.quick or args.write:
        out = REPO_ROOT / "BENCH_profile.json"
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwritten to {out}")

    if args.quick and est_disabled_pct >= GATE_PCT:
        print(f"\nGATE FAILED: estimated disabled-mode overhead "
              f"{est_disabled_pct:.3f}% >= {GATE_PCT}% of iteration time",
              file=sys.stderr)
        return 1
    print(f"\ngate ok: estimated disabled-mode overhead "
          f"{est_disabled_pct:.4f}% < {GATE_PCT}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
