"""Headline comparison: all nine paper methods at the paper's reference
coalition (U=4, V'=2) on KAIST, averaged over seeds.

Paper shape (Section V-D): GARL leads everyone on efficiency; AE-Comm is
the best communication baseline; MADDPG and Random trail.  Multi-seed
averaging with bootstrap CIs gives the bench-scale version of Fig. 3's
U=4 column the best possible signal-to-noise.
"""

import numpy as np

from repro.baselines.registry import METHOD_LABELS
from repro.experiments import aggregate_records, run_method_seeds

from benchmarks.conftest import write_report

METHODS = ("garl", "cubicmap", "gam", "gat", "aecomm", "dgn", "ic3net",
           "maddpg", "random")
SEEDS = (0, 1)


def test_comparison_headline(benchmark, preset, output_dir):
    results = {}

    def run():
        for method in METHODS:
            _, agg = run_method_seeds(method, "kaist", preset, SEEDS,
                                      num_ugvs=4, num_uavs_per_ugv=2)
            results[method] = agg
        return results

    benchmark.pedantic(run, iterations=1, rounds=1)

    ranked = sorted(results, key=lambda m: results[m]["efficiency"].mean,
                    reverse=True)
    lines = [f"Headline comparison — KAIST, U=4, V'=2, mean over seeds {SEEDS}",
             "",
             f"{'method':16s}  {'λ mean':>8s}  {'λ 95% CI':>18s}  {'ψ':>7s}  {'ζ':>7s}"]
    for method in ranked:
        agg = results[method]
        eff = agg["efficiency"]
        lines.append(f"{METHOD_LABELS[method]:16s}  {eff.mean:8.4f}  "
                     f"[{eff.ci_low:7.4f},{eff.ci_high:7.4f}]  "
                     f"{agg['psi'].mean:7.4f}  {agg['zeta'].mean:7.4f}")
    lines.append("")
    mark = "✓" if ranked[0] == "garl" else "✗ (GARL should lead at paper scale)"
    lines.append(f"measured leader: {METHOD_LABELS[ranked[0]]} {mark}")
    lines.append("paper ordering: GARL > AE-Comm > {GAM, GAT, DGN, IC3Net, "
                 "CubicMap} > MADDPG ~ Random")

    for agg in results.values():
        assert np.isfinite(agg["efficiency"].mean)
        assert 0.0 <= agg["psi"].mean <= 1.0

    write_report(output_dir, "comparison_headline", "\n".join(lines))
