"""Extra ablation (DESIGN.md §5): the shortest-path threshold q (Eqn. 19).

q caps how far structural correlation reaches: tiny q blinds MC-GCN to
all but adjacent stops, huge q admits noise from irrelevant distant
stops.  This bench sweeps q and reports efficiency.
"""

import numpy as np

from repro.experiments import get_preset, run_method

from benchmarks.conftest import write_report

Q_VALUES = (1.0, 4.0, 8.0, 32.0)


def test_ablation_structural_q(benchmark, preset, output_dir):
    results = {}

    def run():
        for q in Q_VALUES:
            config = preset.garl_config(structural_q=q)
            results[q] = run_method("garl", "kaist", preset, num_ugvs=4,
                                    num_uavs_per_ugv=2, seed=0,
                                    garl_config=config)
        return results

    benchmark.pedantic(run, iterations=1, rounds=1)

    lines = ["Ablation — structural-correlation threshold q (KAIST, U=4, V'=2)", ""]
    lines.append(f"{'q (hops)':>9s}  {'λ':>7s}  {'ψ':>7s}  {'ζ':>7s}")
    for q, record in sorted(results.items()):
        m = record.metrics
        lines.append(f"{q:9.1f}  {m['efficiency']:7.4f}  {m['psi']:7.4f}  {m['zeta']:7.4f}")

    for record in results.values():
        assert np.isfinite(record.efficiency)

    write_report(output_dir, "ablation_structural_q", "\n".join(lines))
